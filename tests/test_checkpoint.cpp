/// \file test_checkpoint.cpp
/// \brief Checkpoint/resume tests: the serial layer, the sealed `.ckpt`
///        format and its corrupt-input rejection, FrameSource/Application
///        skip_to, the registry-driven governor state round-trip and reset
///        audits, and the headline differential — for every registered
///        governor, a run resumed from a checkpoint is bit-identical to one
///        that never stopped.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "common/serial.hpp"
#include "gov/governor.hpp"
#include "hw/platform.hpp"
#include "sim/bintrace.hpp"
#include "sim/builder.hpp"
#include "sim/checkpoint.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/telemetry.hpp"
#include "wl/application.hpp"
#include "wl/frame_source.hpp"
#include "wl/registry.hpp"
#include "wl/video.hpp"

namespace prime::sim {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A streaming (unbounded, seed-deterministic) application, calibrated like
/// the benches calibrate theirs. Copies get private replay cursors, so one
/// instance seeds any number of identical runs.
wl::Application make_streaming_app(const hw::Platform& platform,
                                   std::size_t frames) {
  ExperimentSpec spec;
  spec.workload = "h264";
  spec.fps = 30.0;
  spec.frames = frames;
  spec.stream = true;
  return make_application(spec, platform);
}

/// Bit-exact RunResult comparison: every double must carry the identical
/// IEEE-754 pattern, not merely compare approximately equal.
void expect_results_bitequal(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.epoch_count, b.epoch_count);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.total_energy),
            std::bit_cast<std::uint64_t>(b.total_energy));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.measured_energy),
            std::bit_cast<std::uint64_t>(b.measured_energy));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.total_time),
            std::bit_cast<std::uint64_t>(b.total_time));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.performance_sum),
            std::bit_cast<std::uint64_t>(b.performance_sum));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.power_sum),
            std::bit_cast<std::uint64_t>(b.power_sum));
}

/// Bit-exact EpochRecord comparison through the `.bt` record encoding, which
/// preserves every field's exact bits.
void expect_records_bitequal(const EpochRecord& a, const EpochRecord& b) {
  unsigned char ea[kBinTraceRecordSize];
  unsigned char eb[kBinTraceRecordSize];
  encode_record(a, ea);
  encode_record(b, eb);
  EXPECT_EQ(std::memcmp(ea, eb, sizeof(ea)), 0) << "epoch " << a.epoch;
}

// --- The synthetic decision driver ------------------------------------------
//
// Drives a governor through a deterministic decision sequence without the
// engine: the observation fed back for epoch e is a fixed function of
// (e, chosen action), so two governors in identical state produce identical
// action streams — and any forgotten member in save/load/reset shows up as a
// diverging action.

gov::EpochObservation synthetic_obs(std::size_t epoch, std::size_t action,
                                    double period, const hw::OppTable& opps) {
  gov::EpochObservation obs;
  obs.epoch = epoch;
  obs.period = period;
  // Sweeps the frame time across the deadline so slack changes sign, misses
  // occur, and reactive/PID/RL governors all see varied state.
  obs.frame_time = period * (0.60 + 0.05 * static_cast<double>(
                                               (epoch * 7 + action) % 12));
  obs.window = obs.frame_time > period ? obs.frame_time : period;
  obs.opp_index = action;
  const double freq = opps.at(action).frequency;
  std::vector<common::Cycles> cycles(4);
  obs.total_cycles = 0;
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    cycles[i] = static_cast<common::Cycles>(
        obs.frame_time * freq * (0.70 + 0.06 * static_cast<double>(i)));
    obs.total_cycles += cycles[i];
  }
  obs.core_cycles = std::move(cycles);
  obs.avg_power = 1.0 + 0.2 * static_cast<double>(action);
  // 70..94 degC: crosses the thermal-cap trip (85) and release (78) points,
  // so the decorator's cap state machine actually exercises.
  obs.temperature = 70.0 + static_cast<double>(epoch % 25);
  obs.deadline_met = obs.frame_time <= period;
  return obs;
}

struct DriveResult {
  std::vector<std::size_t> actions;
  std::optional<gov::EpochObservation> last;
};

DriveResult drive(gov::Governor& governor, const hw::OppTable& opps,
                  std::size_t start, std::size_t count,
                  std::optional<gov::EpochObservation> last) {
  auto* clairvoyant = dynamic_cast<gov::Clairvoyant*>(&governor);
  DriveResult out;
  out.last = std::move(last);
  for (std::size_t e = start; e < start + count; ++e) {
    if (clairvoyant != nullptr) {
      gov::FramePreview preview;
      preview.max_core_cycles =
          static_cast<common::Cycles>(2.0e7 + 1.0e6 * static_cast<double>(e % 17));
      preview.total_cycles = preview.max_core_cycles * 4;
      preview.mem_fraction = 0.1;
      clairvoyant->preview_next_frame(preview);
    }
    gov::DecisionContext ctx;
    ctx.epoch = e;
    ctx.period = 1.0 / 30.0;
    ctx.cores = 4;
    ctx.opps = &opps;
    const std::size_t action = governor.decide(ctx, out.last);
    out.actions.push_back(action);
    out.last = synthetic_obs(e, action, ctx.period, opps);
  }
  return out;
}

// --- StateWriter / StateReader -----------------------------------------------

TEST(Serial, PrimitivesRoundTripBitExact) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  common::StateWriter w(buf);
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(-0.0);
  w.f64(0.1);
  w.boolean(true);
  w.boolean(false);
  w.str("governor state");
  w.str("");
  w.vec_f64({1.5, -2.5, 1.0e300});
  w.vec_u64({7, 0, ~std::uint64_t{0}});

  common::StateReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(r.f64(), 0.1);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "governor state");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.vec_f64(), (std::vector<double>{1.5, -2.5, 1.0e300}));
  EXPECT_EQ(r.vec_u64(), (std::vector<std::uint64_t>{7, 0, ~std::uint64_t{0}}));
}

TEST(Serial, TruncationAndCorruptionThrow) {
  {
    std::istringstream empty;
    common::StateReader r(empty);
    EXPECT_THROW((void)r.u64(), common::SerialError);
  }
  {
    std::stringstream buf;
    common::StateWriter w(buf);
    w.u8(7);  // not a valid boolean encoding
    common::StateReader r(buf);
    EXPECT_THROW((void)r.boolean(), common::SerialError);
  }
  {
    std::stringstream buf;
    common::StateWriter w(buf);
    w.u64(common::StateReader::kMaxString + 1);  // absurd string length
    common::StateReader r(buf);
    EXPECT_THROW((void)r.str(), common::SerialError);
  }
}

// --- FrameSource::skip_to ----------------------------------------------------

TEST(FrameSourceSkip, TraceSourceSkipsInConstantTime) {
  const wl::WorkloadTrace trace =
      wl::VideoTraceGenerator::h264_football().generate(20, 3);
  wl::TraceFrameSource source(trace);
  EXPECT_EQ(source.position(), 0u);
  ASSERT_TRUE(source.skip_to(5));
  EXPECT_EQ(source.position(), 5u);
  EXPECT_EQ(source.next()->cycles, trace.at(5).cycles);
  // Backward skips are a contract violation, not a silent rewind.
  EXPECT_THROW((void)source.skip_to(2), std::invalid_argument);
  // Skipping past the end reports exhaustion and stops at the boundary.
  EXPECT_FALSE(source.skip_to(100));
  EXPECT_EQ(source.position(), 20u);
  EXPECT_EQ(source.next(), std::nullopt);
}

TEST(FrameSourceSkip, ScaledSourceDelegatesToItsInner) {
  const wl::WorkloadTrace trace =
      wl::VideoTraceGenerator::h264_football().generate(10, 3);
  wl::ScaledFrameSource reference(
      std::make_unique<wl::TraceFrameSource>(trace), 1.5);
  std::vector<common::Cycles> expected;
  while (const auto f = reference.next()) expected.push_back(f->cycles);

  wl::ScaledFrameSource skipped(std::make_unique<wl::TraceFrameSource>(trace),
                                1.5);
  ASSERT_TRUE(skipped.skip_to(6));
  EXPECT_EQ(skipped.next()->cycles, expected[6]);
  EXPECT_FALSE(skipped.skip_to(50));
}

TEST(FrameSourceSkip, SkipEqualsPullForEveryRegisteredGenerator) {
  // The resume contract for generator streams: a stream skipped to frame k
  // continues with exactly the frames a straight pull reaches — the skip
  // replays the same per-frame draws.
  for (const std::string& name : wl::workload_registry().names()) {
    SCOPED_TRACE(name);
    const auto generator = wl::workload_registry().create(name);
    const std::size_t k = 23;
    std::unique_ptr<wl::FrameSource> reference = generator->stream(11);
    for (std::size_t i = 0; i < k; ++i) (void)reference->next();
    std::unique_ptr<wl::FrameSource> skipped = generator->stream(11);
    ASSERT_TRUE(skipped->skip_to(k));
    EXPECT_EQ(skipped->position(), k);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(skipped->next(), reference->next()) << "frame " << (k + i);
    }
  }
}

TEST(ApplicationSkip, StreamingCursorFastForwardsAndRewinds) {
  const auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application reference = make_streaming_app(*platform, 100);
  wl::Application skipped(reference);  // private cursor
  skipped.skip_to(42);
  EXPECT_EQ(skipped.core_work(42, 4), reference.core_work(42, 4));
  // Backward skip re-creates the deterministic source.
  skipped.skip_to(7);
  EXPECT_EQ(skipped.core_work(7, 4), reference.core_work(7, 4));
  // Materialised applications are random access: skip_to is a no-op.
  wl::WorkloadTrace trace =
      wl::VideoTraceGenerator::h264_football().generate(10, 3);
  const wl::Application bounded("b", trace, 30.0);
  bounded.skip_to(3);
  EXPECT_EQ(bounded.frame_cycles(0), trace.at(0).cycles);
}

TEST(ApplicationSkip, BoundedSourceExhaustionThrows) {
  wl::WorkloadTrace trace =
      wl::VideoTraceGenerator::h264_football().generate(5, 3);
  const wl::Application app(
      "bounded", [trace] { return std::make_unique<wl::TraceFrameSource>(trace); },
      30.0);
  EXPECT_THROW(app.skip_to(9), std::out_of_range);
}

// --- Governor state round-trip and reset audits ------------------------------

TEST(GovernorState, SaveResetLoadRoundTripsForEveryRegisteredGovernor) {
  // Train briefly, save, keep deciding (the reference continuation), then
  // reset + load and replay the same decision sequence: every action must
  // match, or save/load forgot a member (learning tables, RNG, accumulators).
  const auto platform = hw::Platform::odroid_xu3_a15();
  const hw::OppTable& opps = platform->opp_table();
  for (const std::string& name : governor_names()) {
    SCOPED_TRACE(name);
    const auto governor = make_governor(name);
    const DriveResult trained = drive(*governor, opps, 0, 120, std::nullopt);

    std::ostringstream saved;
    governor->save_state(saved);

    const DriveResult reference = drive(*governor, opps, 120, 60, trained.last);

    governor->reset();
    std::istringstream stored(saved.str());
    governor->load_state(stored);
    const DriveResult replayed = drive(*governor, opps, 120, 60, trained.last);

    EXPECT_EQ(reference.actions, replayed.actions);
  }
}

TEST(GovernorState, ResetMatchesAFreshInstanceForEveryRegisteredGovernor) {
  // The reset() audit, pinned: a trained-then-reset governor must decide
  // exactly like a freshly constructed one — any member missing from a
  // reset() implementation (including a decorator forgetting its inner
  // governor) diverges here.
  const auto platform = hw::Platform::odroid_xu3_a15();
  const hw::OppTable& opps = platform->opp_table();
  for (const std::string& name : governor_names()) {
    SCOPED_TRACE(name);
    const auto fresh = make_governor(name);
    const auto recycled = make_governor(name);
    (void)drive(*recycled, opps, 0, 150, std::nullopt);  // train
    recycled->reset();
    const DriveResult a = drive(*fresh, opps, 0, 80, std::nullopt);
    const DriveResult b = drive(*recycled, opps, 0, 80, std::nullopt);
    EXPECT_EQ(a.actions, b.actions);
  }
}

TEST(GovernorState, LoadRejectsTruncatedPayload) {
  const auto platform = hw::Platform::odroid_xu3_a15();
  const hw::OppTable& opps = platform->opp_table();
  const auto governor = make_governor("rtm-manycore");
  (void)drive(*governor, opps, 0, 50, std::nullopt);
  std::ostringstream saved;
  governor->save_state(saved);
  const std::string payload = saved.str();
  ASSERT_GT(payload.size(), 16u);
  std::istringstream truncated(payload.substr(0, payload.size() / 2));
  EXPECT_THROW(governor->load_state(truncated), common::SerialError);
}

// --- The `.ckpt` format ------------------------------------------------------

Checkpoint sample_checkpoint() {
  Checkpoint ck;
  ck.governor = "test-governor";
  ck.application = "test-app";
  ck.opp_count = 19;
  ck.core_count = 4;
  ck.frame_position = 173;
  ck.aggregates.epoch_count = 173;
  ck.aggregates.total_energy = 12.5;
  ck.aggregates.total_time = 6.92;
  ck.aggregates.deadline_misses = 3;
  ck.aggregates.performance_sum = 150.25;
  ck.aggregates.power_sum = 310.0;
  ck.has_last = true;
  ck.last = synthetic_obs(172, 5, 1.0 / 30.0,
                          hw::Platform::odroid_xu3_a15()->opp_table());
  ck.governor_state = std::string("\x01\x02\x03\x00\x04", 5);
  ck.platform_state = std::string(300, '\x7f');
  return ck;
}

TEST(CheckpointFormat, FileRoundTripPreservesEveryField) {
  const std::string path = temp_path("roundtrip.ckpt");
  const Checkpoint ck = sample_checkpoint();
  ck.save_file(path);
  const Checkpoint rt = Checkpoint::load_file(path);
  EXPECT_EQ(rt.governor, ck.governor);
  EXPECT_EQ(rt.application, ck.application);
  EXPECT_EQ(rt.opp_count, ck.opp_count);
  EXPECT_EQ(rt.core_count, ck.core_count);
  EXPECT_EQ(rt.frame_position, ck.frame_position);
  expect_results_bitequal(rt.aggregates, ck.aggregates);
  ASSERT_TRUE(rt.has_last);
  EXPECT_EQ(rt.last.epoch, ck.last.epoch);
  EXPECT_EQ(rt.last.core_cycles, ck.last.core_cycles);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(rt.last.frame_time),
            std::bit_cast<std::uint64_t>(ck.last.frame_time));
  EXPECT_EQ(rt.governor_state, ck.governor_state);
  EXPECT_EQ(rt.platform_state, ck.platform_state);
}

TEST(CheckpointFormat, SaveIsAtomicOverAnExistingFile) {
  const std::string path = temp_path("atomic.ckpt");
  Checkpoint ck = sample_checkpoint();
  ck.save_file(path);
  ck.frame_position = 500;
  ck.save_file(path);  // overwrite via tmp+rename
  EXPECT_EQ(Checkpoint::load_file(path).frame_position, 500u);
}

TEST(CheckpointFormat, RejectsCorruptFiles) {
  const std::string path = temp_path("corrupt.ckpt");
  sample_checkpoint().save_file(path);
  const std::string valid = read_bytes(path);

  const auto expect_rejected = [&](const std::string& bytes,
                                   const std::string& what) {
    write_bytes(path, bytes);
    try {
      (void)Checkpoint::load_file(path);
      FAIL() << "accepted a checkpoint with " << what;
    } catch (const CheckpointError& e) {
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << what;
    }
  };

  std::string bad_magic = valid;
  bad_magic[0] = 'X';
  expect_rejected(bad_magic, "bad magic");

  std::string version_skew = valid;
  common::store_u32(reinterpret_cast<unsigned char*>(version_skew.data()) + 8,
                    99);
  expect_rejected(version_skew, "an unsupported version");

  std::string unsealed = valid;
  common::store_u64(reinterpret_cast<unsigned char*>(unsealed.data()) + 16,
                    kCheckpointUnsealed);
  expect_rejected(unsealed, "an unsealed header");

  expect_rejected(valid.substr(0, valid.size() - 10), "a truncated payload");
  expect_rejected(valid.substr(0, kCheckpointHeaderSize / 2),
                  "a truncated header");
  expect_rejected(valid + "junk", "trailing bytes");
}

// --- Resume-vs-uninterrupted differential ------------------------------------

TEST(CheckpointResume, BitIdenticalForEveryRegisteredGovernor) {
  // The headline contract: run N frames straight vs. stop at k + resume, for
  // every registered governor on a streaming workload. Final aggregates and
  // every tail epoch record must match bit for bit — any unserialised scrap
  // of governor, platform or stream state diverges here.
  constexpr std::size_t kFull = 400;
  constexpr std::size_t kStop = 173;
  const auto calibration = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_streaming_app(*calibration, kFull);

  for (const std::string& name : governor_names()) {
    SCOPED_TRACE(name);

    // Uninterrupted reference.
    const auto platform_full = hw::Platform::odroid_xu3_a15();
    const auto governor_full = make_governor(name);
    TraceSink full_trace;
    RunOptions full_options;
    full_options.max_frames = kFull;
    full_options.sinks = {&full_trace};
    const wl::Application app_full(app);
    const RunResult full =
        run_simulation(*platform_full, app_full, *governor_full, full_options);

    // Stop at k, leaving a run-end checkpoint (what a killed run leaves
    // behind after its last periodic snapshot).
    const std::string ckpt = temp_path("diff-" + name + ".ckpt");
    const auto platform_stop = hw::Platform::odroid_xu3_a15();
    const auto governor_stop = make_governor(name);
    RunOptions stop_options;
    stop_options.max_frames = kStop;
    stop_options.checkpoint_path = ckpt;
    const wl::Application app_stop(app);
    (void)run_simulation(*platform_stop, app_stop, *governor_stop,
                         stop_options);

    // Resume on a *fresh* governor + platform + stream, to the full length.
    const auto platform_resume = hw::Platform::odroid_xu3_a15();
    const auto governor_resume = make_governor(name);
    TraceSink tail_trace;
    RunOptions resume_options;
    resume_options.max_frames = kFull;
    resume_options.resume_from = ckpt;
    resume_options.sinks = {&tail_trace};
    const wl::Application app_resume(app);
    const RunResult resumed = run_simulation(*platform_resume, app_resume,
                                             *governor_resume, resume_options);

    expect_results_bitequal(full, resumed);
    ASSERT_EQ(tail_trace.records().size(), kFull - kStop);
    ASSERT_EQ(full_trace.records().size(), kFull);
    for (std::size_t i = 0; i < tail_trace.records().size(); ++i) {
      expect_records_bitequal(full_trace.records()[kStop + i],
                              tail_trace.records()[i]);
    }
  }
}

TEST(CheckpointResume, TailBinTraceIsByteIdenticalToTheReference) {
  // The on-disk story the CI job tells: a resumed run's `.bt` equals the
  // uninterrupted reference's tail, record for record, at the byte level.
  constexpr std::size_t kFull = 300;
  constexpr std::size_t kStop = 120;
  const auto calibration = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_streaming_app(*calibration, kFull);
  const std::string full_bt = temp_path("full.bt");
  const std::string tail_bt = temp_path("tail.bt");
  const std::string ckpt = temp_path("tail.ckpt");

  {
    const auto platform = hw::Platform::odroid_xu3_a15();
    const auto governor = make_governor("rtm-manycore");
    const auto sink = make_sink("bintrace(path=" + full_bt + ")");
    RunOptions options;
    options.max_frames = kFull;
    options.sinks = {sink.get()};
    const wl::Application run_app(app);
    (void)run_simulation(*platform, run_app, *governor, options);
  }
  {
    const auto platform = hw::Platform::odroid_xu3_a15();
    const auto governor = make_governor("rtm-manycore");
    RunOptions options;
    options.max_frames = kStop;
    options.checkpoint_path = ckpt;
    const wl::Application run_app(app);
    (void)run_simulation(*platform, run_app, *governor, options);
  }
  {
    const auto platform = hw::Platform::odroid_xu3_a15();
    const auto governor = make_governor("rtm-manycore");
    const auto sink = make_sink("bintrace(path=" + tail_bt + ")");
    RunOptions options;
    options.max_frames = kFull;
    options.resume_from = ckpt;
    options.sinks = {sink.get()};
    const wl::Application run_app(app);
    (void)run_simulation(*platform, run_app, *governor, options);
  }

  BinTraceReader full(full_bt);
  BinTraceReader tail(tail_bt);
  ASSERT_EQ(full.record_count(), kFull);
  ASSERT_EQ(tail.record_count(), kFull - kStop);
  for (std::size_t i = 0; i < tail.record_count(); ++i) {
    expect_records_bitequal(full.at(kStop + i), tail.at(i));
  }
}

// --- Resume rejection --------------------------------------------------------

TEST(CheckpointResume, MismatchedGovernorOrApplicationFailsLoudly) {
  const auto calibration = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_streaming_app(*calibration, 80);
  const std::string ckpt = temp_path("mismatch.ckpt");
  {
    const auto platform = hw::Platform::odroid_xu3_a15();
    const auto governor = make_governor("shen-rl");
    RunOptions options;
    options.max_frames = 80;
    options.checkpoint_path = ckpt;
    const wl::Application run_app(app);
    (void)run_simulation(*platform, run_app, *governor, options);
  }
  // Resuming shen-rl state into a pid governor must fail loudly...
  {
    const auto platform = hw::Platform::odroid_xu3_a15();
    const auto governor = make_governor("pid");
    RunOptions options;
    options.max_frames = 120;
    options.resume_from = ckpt;
    const wl::Application run_app(app);
    EXPECT_THROW(
        (void)run_simulation(*platform, run_app, *governor, options),
        CheckpointError);
  }
  // ...and so must resuming onto a different application.
  {
    const auto platform = hw::Platform::odroid_xu3_a15();
    const auto governor = make_governor("shen-rl");
    ExperimentSpec spec;
    spec.workload = "fft";
    spec.frames = 120;
    spec.stream = true;
    const wl::Application other = make_application(spec, *platform);
    RunOptions options;
    options.max_frames = 120;
    options.resume_from = ckpt;
    EXPECT_THROW((void)run_simulation(*platform, other, *governor, options),
                 CheckpointError);
  }
}

TEST(CheckpointResume, DifferentPlatformShapeFailsLoudly) {
  // Governors size their learning tables lazily from the action space, so a
  // same-named governor resumed on a platform with a different OPP table
  // would silently re-initialise its restored Q-values on the first
  // decide(). The stored platform shape rejects that up front.
  const auto calibration = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_streaming_app(*calibration, 60);
  const std::string ckpt = temp_path("shape.ckpt");
  {
    const auto platform = hw::Platform::odroid_xu3_a15();  // 19 OPPs
    const auto governor = make_governor("shen-rl");
    RunOptions options;
    options.max_frames = 60;
    options.checkpoint_path = ckpt;
    const wl::Application run_app(app);
    (void)run_simulation(*platform, run_app, *governor, options);
  }
  common::Config cfg;
  cfg.set_int("hw.opps", 10);  // a 10-OPP action space
  const auto other = hw::Platform::from_config(cfg);
  const auto governor = make_governor("shen-rl");
  RunOptions options;
  options.max_frames = 100;
  options.resume_from = ckpt;
  const wl::Application run_app(app);
  EXPECT_THROW((void)run_simulation(*other, run_app, *governor, options),
               CheckpointError);
}

TEST(CheckpointResume, PositionBeyondRunLengthRejected) {
  const auto calibration = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_streaming_app(*calibration, 60);
  const std::string ckpt = temp_path("beyond.ckpt");
  {
    const auto platform = hw::Platform::odroid_xu3_a15();
    const auto governor = make_governor("ondemand");
    RunOptions options;
    options.max_frames = 60;
    options.checkpoint_path = ckpt;
    const wl::Application run_app(app);
    (void)run_simulation(*platform, run_app, *governor, options);
  }
  const auto platform = hw::Platform::odroid_xu3_a15();
  const auto governor = make_governor("ondemand");
  RunOptions options;
  options.max_frames = 30;  // shorter than the checkpoint's position
  options.resume_from = ckpt;
  const wl::Application run_app(app);
  EXPECT_THROW((void)run_simulation(*platform, run_app, *governor, options),
               std::invalid_argument);
}

TEST(RunOptionsValidation, CheckpointEveryRequiresAPath) {
  const auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_streaming_app(*platform, 20);
  const auto governor = make_governor("performance");
  RunOptions options;
  options.max_frames = 20;
  options.checkpoint_every = 5;  // no checkpoint_path
  EXPECT_THROW((void)run_simulation(*platform, app, *governor, options),
               std::invalid_argument);
}

// --- CheckpointSink ----------------------------------------------------------

TEST(CheckpointSinkTest, PeriodicCadencePlusFinalSnapshot) {
  const auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_streaming_app(*platform, 100);
  const auto governor = make_governor("ondemand");
  const std::string path = temp_path("cadence.ckpt");
  const auto sink = make_sink("checkpoint(path=" + path + ",every=30)");
  auto* checkpoint_sink = dynamic_cast<CheckpointSink*>(sink.get());
  ASSERT_NE(checkpoint_sink, nullptr);
  EXPECT_EQ(checkpoint_sink->every(), 30u);

  RunOptions options;
  options.max_frames = 100;
  options.sinks = {sink.get()};
  (void)run_simulation(*platform, app, *governor, options);

  // Epochs 30/60/90 plus the final run-end snapshot.
  EXPECT_EQ(checkpoint_sink->snapshots_written(), 4u);
  const Checkpoint final_ck = Checkpoint::load_file(path);
  EXPECT_EQ(final_ck.frame_position, 100u);
  EXPECT_EQ(final_ck.governor, "ondemand");
}

TEST(CheckpointSinkTest, CompletedRunsCanBeExtended) {
  // The final run-end checkpoint turns "the run finished" into "the run can
  // continue": resume with a larger max_frames and the extension is
  // bit-identical to a straight longer run.
  const auto calibration = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_streaming_app(*calibration, 150);
  const std::string ckpt = temp_path("extend.ckpt");

  const auto platform_a = hw::Platform::odroid_xu3_a15();
  const auto governor_a = make_governor("rtm");
  RunOptions straight;
  straight.max_frames = 150;
  const wl::Application app_a(app);
  const RunResult reference =
      run_simulation(*platform_a, app_a, *governor_a, straight);

  const auto platform_b = hw::Platform::odroid_xu3_a15();
  const auto governor_b = make_governor("rtm");
  RunOptions first;
  first.max_frames = 100;
  first.checkpoint_path = ckpt;
  const wl::Application app_b(app);
  (void)run_simulation(*platform_b, app_b, *governor_b, first);

  const auto platform_c = hw::Platform::odroid_xu3_a15();
  const auto governor_c = make_governor("rtm");
  RunOptions extend;
  extend.max_frames = 150;
  extend.resume_from = ckpt;
  const wl::Application app_c(app);
  const RunResult extended =
      run_simulation(*platform_c, app_c, *governor_c, extend);

  expect_results_bitequal(reference, extended);
}

TEST(CheckpointSinkTest, BindsThroughSampleDecimation) {
  // sample(inner=checkpoint(...)) composes: the engine unwraps the
  // decimator to bind the nested sink, and the sample cadence gates how
  // often snapshots are taken (every 40th epoch here, checkpointing on each
  // forwarded one, plus the final run-end snapshot).
  const auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_streaming_app(*platform, 100);
  const auto governor = make_governor("ondemand");
  const std::string path = temp_path("sampled.ckpt");
  const auto sink =
      make_sink("sample(every=40,inner=checkpoint(path=" + path + ",every=1))");
  RunOptions options;
  options.max_frames = 100;
  options.sinks = {sink.get()};
  (void)run_simulation(*platform, app, *governor, options);
  auto* sample = dynamic_cast<SampleSink*>(sink.get());
  ASSERT_NE(sample, nullptr);
  auto* checkpoint_sink = dynamic_cast<CheckpointSink*>(&sample->inner());
  ASSERT_NE(checkpoint_sink, nullptr);
  // Forwarded epochs 0/40/80 plus the final run-end snapshot.
  EXPECT_EQ(checkpoint_sink->snapshots_written(), 4u);
  EXPECT_EQ(Checkpoint::load_file(path).frame_position, 100u);
}

TEST(CheckpointSinkTest, UnboundSinkFailsLoudlyAtRunBegin) {
  // Engines that never bind the sink (the multi-app engine) must produce a
  // clear error instead of a run that silently recorded nothing.
  const auto sink = make_sink("checkpoint(path=" + temp_path("unbound.ckpt") +
                              ")");
  RunContext ctx;
  EXPECT_THROW(sink->on_run_begin(ctx), std::logic_error);
}

TEST(CheckpointSinkTest, ThrowingRunUnbindsTheSnapshot) {
  // A run that dies mid-loop skips on_run_end, but the engine's scope guard
  // must still unbind the sink — reusing it afterwards has to hit the
  // loud unbound-use error, never a dangling binding into the dead frame.
  wl::WorkloadTrace trace =
      wl::VideoTraceGenerator::h264_football().generate(5, 3);
  const wl::Application bounded(
      "bounded", [trace] { return std::make_unique<wl::TraceFrameSource>(trace); },
      30.0);
  const auto platform = hw::Platform::odroid_xu3_a15();
  const auto governor = make_governor("performance");
  const auto sink = make_sink("checkpoint(path=" + temp_path("throwing.ckpt") +
                              ",every=2)");
  RunOptions options;
  options.max_frames = 10;  // exhausts the 5-frame source mid-run
  options.sinks = {sink.get()};
  EXPECT_THROW((void)run_simulation(*platform, bounded, *governor, options),
               std::out_of_range);
  RunContext ctx;
  EXPECT_THROW(sink->on_run_begin(ctx), std::logic_error);
}

TEST(CheckpointSinkTest, SpecValidation) {
  EXPECT_THROW((void)make_sink("checkpoint"), std::invalid_argument);
  EXPECT_THROW((void)make_sink("checkpoint(pth=x.ckpt)"),
               std::invalid_argument);
  EXPECT_THROW((void)make_sink("checkpoint(path=x.ckpt,every=-1)"),
               std::invalid_argument);
}

// --- Builder integration -----------------------------------------------------

TEST(BuilderCheckpoint, PerScenarioCheckpointsViaSpecFlags) {
  const std::string pattern = temp_path("sweep-{governor}.ckpt");
  const SweepResult sweep = ExperimentBuilder()
                                .workload("fft")
                                .governors({"pid", "ondemand"})
                                .frames(60)
                                .stream(true)
                                .oracle_baseline(false)
                                .checkpoint(pattern, 25)
                                .run();
  ASSERT_EQ(sweep.results.size(), 2u);
  const Checkpoint pid_ck = Checkpoint::load_file(temp_path("sweep-pid.ckpt"));
  EXPECT_EQ(pid_ck.frame_position, 60u);
  EXPECT_EQ(pid_ck.governor, "pid-slack");
  const Checkpoint ond_ck =
      Checkpoint::load_file(temp_path("sweep-ondemand.ckpt"));
  EXPECT_EQ(ond_ck.governor, "ondemand");
}

TEST(BuilderCheckpoint, NonUniqueCheckpointTargetsRejected) {
  ExperimentBuilder builder;
  builder.workload("fft")
      .governors({"pid", "ondemand"})
      .frames(40)
      .oracle_baseline(false)
      .checkpoint(temp_path("collide.ckpt"));  // no placeholder: collides
  EXPECT_THROW((void)builder.run(), std::invalid_argument);
}

}  // namespace
}  // namespace prime::sim
