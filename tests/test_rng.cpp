/// \file test_rng.cpp
/// \brief Unit and property tests for the deterministic RNG.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"

namespace prime::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedDoesNotDegenerate) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 50; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 45u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r(19);
  EXPECT_EQ(r.uniform_int(4, 4), 4);
  EXPECT_EQ(r.uniform_int(9, 3), 9);  // inverted range returns lo
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(23);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng r(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng r(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(4.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng r(37);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng r(41);
  const std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.discrete(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, DiscreteDegenerateInputs) {
  Rng r(43);
  EXPECT_EQ(r.discrete({}), 0u);
  EXPECT_EQ(r.discrete({0.0, 0.0}), 1u);    // all-zero -> last index
  EXPECT_EQ(r.discrete({-1.0, -2.0}), 1u);  // negatives treated as zero
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(47);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(SplitMix64, KnownSequenceAdvances) {
  std::uint64_t s = 0;
  const auto a = splitmix64_next(s);
  const auto b = splitmix64_next(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

/// Property sweep: every seed produces values covering both halves of [0,1).
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, CoversUnitInterval) {
  Rng r(GetParam());
  bool low = false;
  bool high = false;
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    low = low || u < 0.5;
    high = high || u >= 0.5;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 0xDEADBEEFull,
                                           ~0ull));

// --- derive_seed -------------------------------------------------------------

TEST(DeriveSeed, PinnedGoldenValues) {
  // Golden values pin the derivation scheme itself: a change here silently
  // re-seeds every device of every fleet population, so it must be loud.
  EXPECT_EQ(derive_seed(0, 0), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(derive_seed(0, 1), 0x6E789E6AA1B965F4ull);
  EXPECT_EQ(derive_seed(0, 2), 0x06C45D188009454Full);
  EXPECT_EQ(derive_seed(0, 5), 0x53CB9F0C747EA2EAull);
  EXPECT_EQ(derive_seed(0, 1000000), 0xCE17D6BAB14CD32Aull);
  EXPECT_EQ(derive_seed(42, 0), 0xBDD732262FEB6E95ull);
  EXPECT_EQ(derive_seed(42, 1), 0x28EFE333B266F103ull);
  EXPECT_EQ(derive_seed(42, 2), 0x47526757130F9F52ull);
  EXPECT_EQ(derive_seed(42, 5), 0xDE4431FA3C80DB06ull);
  EXPECT_EQ(derive_seed(42, 1000000), 0xB053C53312AC3FFBull);
  EXPECT_EQ(derive_seed(0xDEADBEEF, 0), 0x4ADFB90F68C9EB9Bull);
  EXPECT_EQ(derive_seed(0xDEADBEEF, 1), 0xDE586A3141A10922ull);
  EXPECT_EQ(derive_seed(0xDEADBEEF, 1000000), 0xA9F301D8D37D23A7ull);
}

TEST(DeriveSeed, IsAnO1JumpIntoTheSequentialSplitMixStream) {
  // derive_seed(base, k) must equal the (k+1)-th output of a sequential
  // splitmix64 walk seeded with base — the jump is an indexing convenience,
  // not a different generator.
  std::uint64_t state = 42;
  for (std::uint64_t k = 0; k < 256; ++k) {
    EXPECT_EQ(derive_seed(42, k), splitmix64_next(state)) << "stream " << k;
  }
}

TEST(DeriveSeed, StreamsAreDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t k = 0; k < 10000; ++k) seen.insert(derive_seed(7, k));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(DeriveSeed, DifferentBasesDecorrelate) {
  int equal = 0;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    if (derive_seed(1, k) == derive_seed(2, k)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace prime::common
