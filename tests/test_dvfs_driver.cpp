/// \file test_dvfs_driver.cpp
/// \brief Unit tests for the DVFS driver transition-cost model.
#include <gtest/gtest.h>

#include "hw/dvfs_driver.hpp"

namespace prime::hw {
namespace {

TEST(DvfsDriver, StartsAtRequestedIndex) {
  const OppTable t = OppTable::odroid_xu3_a15();
  const DvfsDriver d(t, 9);
  EXPECT_EQ(d.current_index(), 9u);
  EXPECT_DOUBLE_EQ(d.current().frequency, common::mhz(1100.0));
}

TEST(DvfsDriver, InitialIndexClamped) {
  const OppTable t = OppTable::odroid_xu3_a15();
  const DvfsDriver d(t, 999);
  EXPECT_EQ(d.current_index(), 18u);
}

TEST(DvfsDriver, NoOpSwitchCostsNothing) {
  const OppTable t = OppTable::odroid_xu3_a15();
  DvfsDriver d(t, 5);
  EXPECT_DOUBLE_EQ(d.set_opp(5), 0.0);
  EXPECT_EQ(d.transition_count(), 0u);
}

TEST(DvfsDriver, TransitionCostGrowsWithDistance) {
  const OppTable t = OppTable::odroid_xu3_a15();
  DvfsDriver near(t, 9);
  DvfsDriver far(t, 9);
  const double small = near.set_opp(10);
  const double big = far.set_opp(18);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(big, small);
}

TEST(DvfsDriver, BaseLatencyMatchesParams) {
  const OppTable t = OppTable::odroid_xu3_a15();
  DvfsDriverParams p;
  p.transition_latency = common::us(100.0);
  p.latency_per_step = common::us(5.0);
  DvfsDriver d(t, 0, p);
  // One 100 MHz step: 100 us + 5 us.
  EXPECT_NEAR(d.set_opp(1), common::us(105.0), 1e-12);
}

TEST(DvfsDriver, CountsTransitionsAndStall) {
  const OppTable t = OppTable::odroid_xu3_a15();
  DvfsDriver d(t, 0);
  (void)d.set_opp(5);
  (void)d.set_opp(5);  // no-op
  (void)d.set_opp(2);
  EXPECT_EQ(d.transition_count(), 2u);
  EXPECT_GT(d.total_stall(), 0.0);
}

TEST(DvfsDriver, TargetClamped) {
  const OppTable t = OppTable::odroid_xu3_a15();
  DvfsDriver d(t, 0);
  (void)d.set_opp(1000);
  EXPECT_EQ(d.current_index(), 18u);
}

TEST(DvfsDriver, ResetCountersKeepsOpp) {
  const OppTable t = OppTable::odroid_xu3_a15();
  DvfsDriver d(t, 0);
  (void)d.set_opp(7);
  d.reset_counters();
  EXPECT_EQ(d.transition_count(), 0u);
  EXPECT_DOUBLE_EQ(d.total_stall(), 0.0);
  EXPECT_EQ(d.current_index(), 7u);
}

}  // namespace
}  // namespace prime::hw
