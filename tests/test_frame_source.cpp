/// \file test_frame_source.cpp
/// \brief Unit tests for lazy frame sources and the streaming equivalence
///        guarantee: for every registered generator, stream(seed) yields
///        exactly the sequence generate(n, seed) materialises.
#include <gtest/gtest.h>

#include <memory>

#include "wl/fft.hpp"
#include "wl/frame_source.hpp"
#include "wl/suites.hpp"
#include "wl/trace.hpp"

namespace prime::wl {
namespace {

TEST(FrameSource, StreamMatchesGenerateForEveryRegisteredWorkload) {
  constexpr std::size_t kFrames = 400;
  constexpr std::uint64_t kSeed = 20170327;
  for (const auto& name : all_workload_names()) {
    const auto generator = make_workload(name);
    const WorkloadTrace trace = generator->generate(kFrames, kSeed);
    ASSERT_EQ(trace.size(), kFrames) << name;
    const auto source = generator->stream(kSeed);
    for (std::size_t i = 0; i < kFrames; ++i) {
      const auto frame = source->next();
      ASSERT_TRUE(frame.has_value()) << name << " frame " << i;
      EXPECT_EQ(frame->cycles, trace.at(i).cycles) << name << " frame " << i;
      EXPECT_EQ(frame->kind, trace.at(i).kind) << name << " frame " << i;
    }
  }
}

TEST(FrameSource, StreamIsDeterministicInSeed) {
  const auto generator = make_workload("h264");
  const auto a = generator->stream(7);
  const auto b = generator->stream(7);
  const auto c = generator->stream(8);
  bool any_difference = false;
  for (std::size_t i = 0; i < 200; ++i) {
    const auto fa = a->next();
    const auto fb = b->next();
    const auto fc = c->next();
    EXPECT_EQ(fa->cycles, fb->cycles);
    any_difference = any_difference || fa->cycles != fc->cycles;
  }
  EXPECT_TRUE(any_difference);  // a different seed produces a different stream
}

TEST(FrameSource, StreamOutlivesItsGenerator) {
  std::unique_ptr<FrameSource> source;
  {
    const auto generator = make_workload("fft");
    source = generator->stream(3);
  }  // generator destroyed; the stream owns its own parameters
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(source->next().has_value());
  }
}

TEST(TraceFrameSource, ReplaysAndExhausts) {
  const WorkloadTrace trace("t", {FrameDemand{100, FrameKind::kIntra},
                                  FrameDemand{200, FrameKind::kPredicted}});
  TraceFrameSource source(trace);
  EXPECT_EQ(source.name(), "t");
  EXPECT_EQ(source.remaining(), 2u);
  EXPECT_EQ(source.next()->cycles, 100u);
  EXPECT_EQ(source.next()->cycles, 200u);
  EXPECT_EQ(source.remaining(), 0u);
  EXPECT_FALSE(source.next().has_value());
  EXPECT_FALSE(source.next().has_value());  // stays exhausted
}

TEST(ScaledFrameSource, RoundsExactlyLikeScaledToMean) {
  const auto generator = FftTraceGenerator::paper_fft();
  const WorkloadTrace trace = generator.generate(300, 11);
  const double target = 1.7e8;
  const WorkloadTrace scaled = trace.scaled_to_mean(target);
  ScaledFrameSource source(generator.stream(11),
                           target / trace.mean_cycles());
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    EXPECT_EQ(source.next()->cycles, scaled.at(i).cycles) << "frame " << i;
  }
}

TEST(ScaledFrameSource, RejectsBadArguments) {
  const auto generator = FftTraceGenerator::paper_fft();
  EXPECT_THROW(ScaledFrameSource(nullptr, 2.0), std::invalid_argument);
  EXPECT_THROW(ScaledFrameSource(generator.stream(1), 0.0),
               std::invalid_argument);
  EXPECT_THROW(ScaledFrameSource(generator.stream(1), -1.0),
               std::invalid_argument);
}

TEST(ScaledFrameSource, PropagatesExhaustion) {
  const WorkloadTrace trace("t", {FrameDemand{101, FrameKind::kGeneric}});
  ScaledFrameSource source(std::make_unique<TraceFrameSource>(trace), 2.0);
  EXPECT_EQ(source.next()->cycles, 202u);
  EXPECT_FALSE(source.next().has_value());
}

}  // namespace
}  // namespace prime::wl
