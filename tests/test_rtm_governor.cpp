/// \file test_rtm_governor.cpp
/// \brief Unit tests for the proposed single-cluster RTM governor.
#include <gtest/gtest.h>

#include "gov/governor.hpp"
#include "rtm/rtm_governor.hpp"

namespace prime::rtm {
namespace {

gov::DecisionContext make_ctx(const hw::OppTable& opps, std::size_t epoch = 0,
                              double period = 0.040) {
  gov::DecisionContext ctx;
  ctx.epoch = epoch;
  ctx.period = period;
  ctx.cores = 4;
  ctx.opps = &opps;
  return ctx;
}

gov::EpochObservation make_obs(const hw::OppTable& /*opps*/, std::size_t epoch,
                               std::size_t opp_index, double frame_time,
                               common::Cycles total) {
  gov::EpochObservation o;
  o.epoch = epoch;
  o.period = 0.040;
  o.frame_time = frame_time;
  o.window = std::max(frame_time, o.period);
  o.total_cycles = total;
  o.core_cycles = {total / 4, total / 4, total / 4, total / 4};
  o.opp_index = opp_index;
  o.deadline_met = frame_time <= o.period;
  return o;
}

TEST(RtmGovernor, FirstDecisionIsValid) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  RtmGovernor g;
  EXPECT_LT(g.decide(make_ctx(opps), std::nullopt), opps.size());
  ASSERT_NE(g.q_table(), nullptr);
  EXPECT_EQ(g.q_table()->states(), 25u);
  EXPECT_EQ(g.q_table()->actions(), 19u);
}

TEST(RtmGovernor, DeterministicForSeed) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  RtmParams p;
  p.seed = 777;
  RtmGovernor a(p);
  RtmGovernor b(p);
  std::optional<gov::EpochObservation> oa;
  std::optional<gov::EpochObservation> ob;
  for (std::size_t i = 0; i < 80; ++i) {
    const auto ia = a.decide(make_ctx(opps, i), oa);
    const auto ib = b.decide(make_ctx(opps, i), ob);
    ASSERT_EQ(ia, ib) << "diverged at epoch " << i;
    oa = make_obs(opps, i, ia, 0.030, 120000000);
    ob = make_obs(opps, i, ib, 0.030, 120000000);
  }
}

TEST(RtmGovernor, QTableGetsUpdatedEachEpoch) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  RtmGovernor g;
  std::optional<gov::EpochObservation> obs;
  for (std::size_t i = 0; i < 10; ++i) {
    const auto idx = g.decide(make_ctx(opps, i), obs);
    obs = make_obs(opps, i, idx, 0.030, 120000000);
  }
  // One update per epoch starting from the second decide.
  EXPECT_EQ(g.q_table()->total_updates(), 9u);
}

TEST(RtmGovernor, ExplorationCountedAndEpsilonDecays) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  RtmGovernor g;
  std::optional<gov::EpochObservation> obs;
  for (std::size_t i = 0; i < 300; ++i) {
    const auto idx = g.decide(make_ctx(opps, i), obs);
    obs = make_obs(opps, i, idx, 0.030, 120000000);
  }
  EXPECT_GT(g.exploration_count(), 20u);
  EXPECT_LT(g.epsilon(), 0.05);
  EXPECT_GT(g.learning_complete_epoch(), 0u);
}

TEST(RtmGovernor, RequirementChangeResetsSlackOnly) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  RtmGovernor g;
  std::optional<gov::EpochObservation> obs;
  for (std::size_t i = 0; i < 20; ++i) {
    const auto idx = g.decide(make_ctx(opps, i, 0.040), obs);
    obs = make_obs(opps, i, idx, 0.030, 120000000);
  }
  const auto updates_before = g.q_table()->total_updates();
  EXPECT_GT(g.slack_monitor().epochs(), 0u);
  // fps change: new Tref. Slack monitor restarts (eq. 5's D), learning kept.
  (void)g.decide(make_ctx(opps, 20, 0.020), obs);
  EXPECT_EQ(g.slack_monitor().epochs(), 1u);
  EXPECT_GE(g.q_table()->total_updates(), updates_before);
}

TEST(RtmGovernor, UpdPolicyVariantConstructs) {
  RtmParams p;
  p.policy = "upd";
  RtmGovernor g(p);
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  EXPECT_LT(g.decide(make_ctx(opps), std::nullopt), opps.size());
}

TEST(RtmGovernor, LinearRewardVariantConstructs) {
  RtmParams p;
  p.reward = "linear-slack";
  RtmGovernor g(p);
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  EXPECT_LT(g.decide(make_ctx(opps), std::nullopt), opps.size());
}

TEST(RtmGovernor, OverheadIsSingleUpdateScale) {
  RtmGovernor g;
  const OverheadModel m;
  EXPECT_NEAR(g.epoch_overhead(), m.epoch_overhead(1), 1e-12);
}

TEST(RtmGovernor, PredictorFollowsObservations) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  RtmGovernor g;
  std::optional<gov::EpochObservation> obs;
  for (std::size_t i = 0; i < 30; ++i) {
    const auto idx = g.decide(make_ctx(opps, i), obs);
    obs = make_obs(opps, i, idx, 0.030, 100000000);
  }
  EXPECT_NEAR(static_cast<double>(g.predictor().prediction()), 1.0e8, 2.0e6);
}

TEST(RtmGovernor, ResetClearsLearning) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  RtmGovernor g;
  std::optional<gov::EpochObservation> obs;
  for (std::size_t i = 0; i < 50; ++i) {
    const auto idx = g.decide(make_ctx(opps, i), obs);
    obs = make_obs(opps, i, idx, 0.030, 120000000);
  }
  g.reset();
  EXPECT_EQ(g.exploration_count(), 0u);
  EXPECT_DOUBLE_EQ(g.epsilon(), g.params().epsilon.epsilon0);
  EXPECT_EQ(g.q_table()->total_updates(), 0u);
  EXPECT_FALSE(g.predictor().primed());
}

TEST(RtmGovernor, GreedyPolicyEmptyBeforeInit) {
  RtmGovernor g;
  EXPECT_TRUE(g.greedy_policy().empty());
}

/// Property: under persistent deep deadline misses the learned greedy action
/// for the visited states must climb towards fast OPPs.
TEST(RtmGovernor, LearnsToClimbUnderMisses) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  RtmParams p;
  p.epsilon.epsilon0 = 0.0;  // pure exploitation: learning shows directly
  p.epsilon.epsilon_min = 0.0;
  RtmGovernor g(p);
  std::optional<gov::EpochObservation> obs;
  std::size_t idx = g.decide(make_ctx(opps, 0), obs);
  const std::size_t start = idx;
  for (std::size_t i = 1; i < 80; ++i) {
    // Whatever it chooses, the frame badly misses (heavy workload).
    obs = make_obs(opps, i, idx, 0.060, 300000000);
    idx = g.decide(make_ctx(opps, i), obs);
  }
  EXPECT_GT(idx, start);
}

}  // namespace
}  // namespace prime::rtm
