/// \file test_pmu.cpp
/// \brief Unit tests for the PMU emulation (interval counter reads).
#include <gtest/gtest.h>

#include "hw/pmu.hpp"

namespace prime::hw {
namespace {

TEST(Pmu, CountersStartAtZero) {
  const Pmu pmu;
  const PmuSnapshot s = pmu.snapshot();
  EXPECT_EQ(s.cycles, 0u);
  EXPECT_EQ(s.instructions, 0u);
  EXPECT_DOUBLE_EQ(s.busy_time, 0.0);
  EXPECT_DOUBLE_EQ(s.idle_time, 0.0);
}

TEST(Pmu, RecordActiveAccumulates) {
  Pmu pmu;
  pmu.record_active(1000, 0.001);
  pmu.record_active(500, 0.0005);
  const PmuSnapshot s = pmu.snapshot();
  EXPECT_EQ(s.cycles, 1500u);
  EXPECT_DOUBLE_EQ(s.busy_time, 0.0015);
}

TEST(Pmu, InstructionsFollowIpc) {
  Pmu pmu;
  pmu.record_active(1000, 0.001, 2.0);
  EXPECT_EQ(pmu.snapshot().instructions, 2000u);
}

TEST(Pmu, DeltaSinceSnapshot) {
  Pmu pmu;
  pmu.record_active(1000, 0.01);
  const PmuSnapshot mark = pmu.snapshot();
  pmu.record_active(250, 0.0025);
  pmu.record_idle(0.0075);
  const PmuDelta d = pmu.delta_since(mark);
  EXPECT_EQ(d.cycles, 250u);
  EXPECT_DOUBLE_EQ(d.busy_time, 0.0025);
  EXPECT_DOUBLE_EQ(d.idle_time, 0.0075);
}

TEST(Pmu, UtilisationFromDelta) {
  Pmu pmu;
  const PmuSnapshot mark = pmu.snapshot();
  pmu.record_active(100, 0.003);
  pmu.record_idle(0.007);
  EXPECT_NEAR(pmu.delta_since(mark).utilisation(), 0.3, 1e-12);
}

TEST(Pmu, UtilisationZeroWhenNoTime) {
  const Pmu pmu;
  EXPECT_DOUBLE_EQ(pmu.delta_since(pmu.snapshot()).utilisation(), 0.0);
}

TEST(Pmu, RefCyclesTrackWallClock) {
  Pmu pmu;
  pmu.record_active(1000, 0.5);
  pmu.record_idle(0.5);
  // 24 MHz reference timer over 1 s.
  EXPECT_NEAR(static_cast<double>(pmu.snapshot().ref_cycles), 24.0e6, 24.0);
}

TEST(Pmu, ResetZeroes) {
  Pmu pmu;
  pmu.record_active(1, 1.0);
  pmu.reset();
  EXPECT_EQ(pmu.snapshot().cycles, 0u);
  EXPECT_DOUBLE_EQ(pmu.snapshot().busy_time, 0.0);
}

}  // namespace
}  // namespace prime::hw
