/// \file test_conservative.cpp
/// \brief Unit tests for the conservative (stepwise) governor.
#include <gtest/gtest.h>

#include "gov/conservative.hpp"

namespace prime::gov {
namespace {

DecisionContext make_ctx(const hw::OppTable& opps) {
  DecisionContext ctx;
  ctx.period = 0.040;
  ctx.cores = 1;
  ctx.opps = &opps;
  return ctx;
}

EpochObservation obs_with_load(const hw::OppTable& opps, std::size_t opp_index,
                               double load) {
  EpochObservation o;
  o.period = 0.040;
  o.window = 0.040;
  o.opp_index = opp_index;
  o.core_cycles = {
      common::cycles_at(opps.at(opp_index).frequency, load * 0.040)};
  return o;
}

TEST(Conservative, StartsMidTable) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ConservativeGovernor g;
  EXPECT_EQ(g.decide(make_ctx(opps), std::nullopt), opps.size() / 2);
}

TEST(Conservative, StepsUpOnHighLoad) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ConservativeGovernor g;
  auto ctx = make_ctx(opps);
  const std::size_t start = g.decide(ctx, std::nullopt);
  const std::size_t next = g.decide(ctx, obs_with_load(opps, start, 0.95));
  EXPECT_EQ(next, start + 1);
}

TEST(Conservative, StepsDownOnLowLoad) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ConservativeGovernor g;
  auto ctx = make_ctx(opps);
  const std::size_t start = g.decide(ctx, std::nullopt);
  const std::size_t next = g.decide(ctx, obs_with_load(opps, start, 0.10));
  EXPECT_EQ(next, start - 1);
}

TEST(Conservative, HoldsInsideBand) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ConservativeGovernor g;
  auto ctx = make_ctx(opps);
  const std::size_t start = g.decide(ctx, std::nullopt);
  const std::size_t next = g.decide(ctx, obs_with_load(opps, start, 0.60));
  EXPECT_EQ(next, start);
}

TEST(Conservative, ClampsAtTableEdges) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ConservativeGovernor g;
  auto ctx = make_ctx(opps);
  std::size_t idx = g.decide(ctx, std::nullopt);
  for (int i = 0; i < 40; ++i) idx = g.decide(ctx, obs_with_load(opps, idx, 0.99));
  EXPECT_EQ(idx, opps.size() - 1);
  for (int i = 0; i < 40; ++i) idx = g.decide(ctx, obs_with_load(opps, idx, 0.01));
  EXPECT_EQ(idx, 0u);
}

TEST(Conservative, ConfigurableStep) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ConservativeParams p;
  p.freq_step = 3;
  ConservativeGovernor g(p);
  auto ctx = make_ctx(opps);
  const std::size_t start = g.decide(ctx, std::nullopt);
  EXPECT_EQ(g.decide(ctx, obs_with_load(opps, start, 0.95)), start + 3);
}

TEST(Conservative, ResetReturnsToMid) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ConservativeGovernor g;
  auto ctx = make_ctx(opps);
  std::size_t idx = g.decide(ctx, std::nullopt);
  for (int i = 0; i < 10; ++i) idx = g.decide(ctx, obs_with_load(opps, idx, 0.99));
  g.reset();
  EXPECT_EQ(g.decide(ctx, std::nullopt), opps.size() / 2);
}

}  // namespace
}  // namespace prime::gov
