/// \file test_learning_transfer.cpp
/// \brief Learning transfer across applications (the Shafik et al. TCAD'16
///        lineage [12] the paper's framework is built on).
///
/// The RTM's Q-table is application-agnostic: states are (workload level,
/// slack level), so knowledge learned on one application seeds another. The
/// engine supports this via RunOptions::reset_governor = false; these tests
/// verify that a warm-started governor (a) skips the exploration phase and
/// (b) misses fewer deadlines early on the second application than a
/// cold-started one. QTable CSV persistence additionally allows transfer
/// across processes.
#include <gtest/gtest.h>

#include <filesystem>

#include "gov/merge.hpp"
#include "qlib/policy.hpp"
#include "rtm/manycore.hpp"
#include "sim/experiment.hpp"
#include "sim/telemetry.hpp"

namespace prime::sim {
namespace {

wl::Application make_app(const char* workload, std::uint64_t seed,
                         const hw::Platform& platform) {
  ExperimentSpec spec;
  spec.workload = workload;
  spec.fps = 25.0;
  spec.frames = 600;
  spec.seed = seed;
  return make_application(spec, platform);
}

std::size_t early_misses(const std::vector<EpochRecord>& records,
                         std::size_t window = 150) {
  std::size_t misses = 0;
  for (std::size_t i = 0; i < records.size() && i < window; ++i) {
    if (!records[i].deadline_met) ++misses;
  }
  return misses;
}

TEST(LearningTransfer, WarmStartSkipsExploration) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application first = make_app("mpeg4", 1, *platform);
  const wl::Application second = make_app("h264", 2, *platform);

  rtm::ManycoreRtmGovernor governor;
  (void)run_simulation(*platform, first, governor);
  const std::size_t explorations_after_first = governor.exploration_count();
  EXPECT_GT(explorations_after_first, 10u);

  RunOptions keep;
  keep.reset_governor = false;  // transfer the learned table and schedule
  (void)run_simulation(*platform, second, governor, keep);
  // Epsilon stayed at its floor: almost no new exploration on app two.
  EXPECT_LT(governor.exploration_count() - explorations_after_first, 10u);
}

TEST(LearningTransfer, WarmStartMissesFewerEarlyDeadlines) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application first = make_app("mpeg4", 1, *platform);
  const wl::Application second = make_app("h264", 2, *platform);

  // Cold: fresh governor directly on the second application.
  rtm::ManycoreRtmGovernor cold;
  TraceSink cold_trace;
  RunOptions cold_opt;
  cold_opt.sinks = {&cold_trace};
  (void)run_simulation(*platform, second, cold, cold_opt);

  // Warm: learn on the first application, then move to the second.
  rtm::ManycoreRtmGovernor warm;
  (void)run_simulation(*platform, first, warm);
  TraceSink warm_trace;
  RunOptions keep;
  keep.reset_governor = false;
  keep.sinks = {&warm_trace};
  (void)run_simulation(*platform, second, warm, keep);

  EXPECT_LT(early_misses(warm_trace.records()),
            early_misses(cold_trace.records()));
}

TEST(LearningTransfer, QlibWarmStartBeatsColdForEveryMergeableGovernor) {
  // The policy-library generalisation of the warm-start tests above: for
  // every registered governor with mergeable learning state, train on one
  // application, publish a leaf `.qpol`, warm-start a *fresh instance* from
  // the file on a second application, and compare early deadline misses
  // against a cold start. Warm must never be worse, and must strictly beat
  // cold for at least one governor (in practice all Q-learners do).
  const std::string dir = testing::TempDir() + "learning-transfer-qlib/";
  std::filesystem::create_directories(dir);
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application first = make_app("mpeg4", 1, *platform);
  const wl::Application second = make_app("h264", 2, *platform);

  std::size_t mergeable = 0;
  std::size_t strictly_better = 0;
  for (const std::string& name : governor_names()) {
    {
      const auto probe = make_governor(name, 7);
      if (probe->make_state_merger() == nullptr) continue;  // not a learner
    }
    ++mergeable;

    // Cold: fresh governor directly on the second application.
    const auto cold = make_governor(name, 7);
    TraceSink cold_trace;
    RunOptions cold_opt;
    cold_opt.sinks = {&cold_trace};
    (void)run_simulation(*platform, second, *cold, cold_opt);

    // Warm: train on the first application, publish, warm-start from disk.
    const auto trained = make_governor(name, 7);
    const RunResult train_run = run_simulation(*platform, first, *trained);
    const qlib::PolicyEntry leaf = qlib::make_leaf_entry(
        *platform, *trained, "h264", 25.0, name, train_run.epoch_count);
    const std::string path = dir + name + ".qpol";
    leaf.save_file(path);

    const auto warm = make_governor(name, 7);
    TraceSink warm_trace;
    RunOptions warm_opt;
    warm_opt.sinks = {&warm_trace};
    warm_opt.warm_start_from = path;
    (void)run_simulation(*platform, second, *warm, warm_opt);

    const std::size_t cold_misses = early_misses(cold_trace.records());
    const std::size_t warm_misses = early_misses(warm_trace.records());
    EXPECT_LE(warm_misses, cold_misses)
        << name << ": warm start missed more early deadlines than cold";
    if (warm_misses < cold_misses) ++strictly_better;
  }
  EXPECT_GE(mergeable, 4u);  // rtm family, shen-rl, mcdvfs at minimum
  EXPECT_GT(strictly_better, 0u);
}

TEST(LearningTransfer, QTablePersistsAcrossProcessesViaCsv) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app("mpeg4", 1, *platform);

  rtm::ManycoreRtmGovernor trained;
  (void)run_simulation(*platform, app, trained);
  ASSERT_NE(trained.q_table(), nullptr);
  const std::string csv = trained.q_table()->to_csv();

  // "New process": a fresh table restored from the serialised knowledge.
  rtm::QTable restored(trained.q_table()->states(),
                       trained.q_table()->actions());
  restored.load_csv(csv);
  EXPECT_EQ(restored.greedy_policy(), trained.q_table()->greedy_policy());
  EXPECT_EQ(restored.total_updates(), 0u);  // counters are fresh
}

}  // namespace
}  // namespace prime::sim
