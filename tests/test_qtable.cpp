/// \file test_qtable.cpp
/// \brief Unit tests for the Q-table and the eq. (3) Bellman update.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "rtm/qtable.hpp"

namespace prime::rtm {
namespace {

TEST(QTable, RejectsZeroDimensions) {
  EXPECT_THROW(QTable(0, 5), std::invalid_argument);
  EXPECT_THROW(QTable(5, 0), std::invalid_argument);
}

TEST(QTable, StartsZeroed) {
  const QTable q(4, 3);
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t a = 0; a < 3; ++a) {
      EXPECT_DOUBLE_EQ(q.q(s, a), 0.0);
      EXPECT_EQ(q.visits(s, a), 0u);
    }
  }
  EXPECT_EQ(q.total_updates(), 0u);
  EXPECT_EQ(q.visited_states(), 0u);
}

TEST(QTable, BoundsChecked) {
  QTable q(2, 2);
  EXPECT_THROW((void)q.q(2, 0), std::out_of_range);
  EXPECT_THROW((void)q.q(0, 2), std::out_of_range);
  EXPECT_THROW(q.set_q(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(q.update(0, 0, 1.0, 2, 0.5, 0.5), std::out_of_range);
  EXPECT_THROW((void)q.best_action(9), std::out_of_range);
}

TEST(QTable, BellmanUpdateEquation3) {
  QTable q(2, 2);
  q.set_q(1, 0, 4.0);  // max_a Q(s'=1, a) = 4
  q.set_q(0, 0, 2.0);
  // Q <- (1-a) Q + a (r + g max) = 0.75*2 + 0.25*(1 + 0.5*4) = 1.5 + 0.75
  q.update(0, 0, 1.0, 1, 0.25, 0.5);
  EXPECT_NEAR(q.q(0, 0), 2.25, 1e-12);
  EXPECT_EQ(q.visits(0, 0), 1u);
  EXPECT_EQ(q.total_updates(), 1u);
}

TEST(QTable, RepeatedUpdatesConvergeToFixedPoint) {
  QTable q(1, 1);
  // Single state-action with reward 1, discount 0.5: fixed point Q = 2.
  for (int i = 0; i < 500; ++i) q.update(0, 0, 1.0, 0, 0.2, 0.5);
  EXPECT_NEAR(q.q(0, 0), 2.0, 1e-6);
}

TEST(QTable, BestActionTieBreaksTowardSlowerOpp) {
  QTable q(1, 4);
  // All zeros: lowest index (slowest, lowest-energy OPP) wins ties.
  EXPECT_EQ(q.best_action(0), 0u);
  q.set_q(0, 2, 1.0);
  q.set_q(0, 3, 1.0);
  EXPECT_EQ(q.best_action(0), 2u);
}

TEST(QTable, BestValue) {
  QTable q(1, 3);
  q.set_q(0, 1, -1.0);
  q.set_q(0, 2, 3.5);
  EXPECT_DOUBLE_EQ(q.best_value(0), 3.5);
}

TEST(QTable, GreedyPolicy) {
  QTable q(3, 2);
  q.set_q(0, 1, 1.0);
  q.set_q(2, 0, 2.0);
  const auto policy = q.greedy_policy();
  ASSERT_EQ(policy.size(), 3u);
  EXPECT_EQ(policy[0], 1u);
  EXPECT_EQ(policy[1], 0u);
  EXPECT_EQ(policy[2], 0u);
}

TEST(QTable, VisitedStatesCoverage) {
  QTable q(4, 2);
  q.update(0, 0, 0.0, 0, 0.5, 0.5);
  q.update(0, 1, 0.0, 0, 0.5, 0.5);
  q.update(3, 0, 0.0, 0, 0.5, 0.5);
  EXPECT_EQ(q.visited_states(), 2u);
}

TEST(QTable, ResetZeroes) {
  QTable q(2, 2);
  q.update(0, 0, 5.0, 1, 0.5, 0.5);
  q.reset();
  EXPECT_DOUBLE_EQ(q.q(0, 0), 0.0);
  EXPECT_EQ(q.total_updates(), 0u);
  EXPECT_EQ(q.visited_states(), 0u);
}

TEST(QTable, CsvRoundTrip) {
  QTable q(3, 4);
  q.update(1, 2, 1.5, 0, 0.3, 0.5);
  q.set_q(2, 3, -0.75);
  const std::string csv = q.to_csv();
  QTable back(3, 4);
  back.load_csv(csv);
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t a = 0; a < 4; ++a) {
      EXPECT_DOUBLE_EQ(back.q(s, a), q.q(s, a)) << s << "," << a;
      EXPECT_EQ(back.visits(s, a), q.visits(s, a));
    }
  }
}

TEST(QTable, LoadCsvRejectsWrongShape) {
  QTable small(1, 1);
  QTable big(5, 5);
  EXPECT_THROW(small.load_csv(big.to_csv()), std::runtime_error);
  EXPECT_THROW(small.load_csv("foo,bar\n1,2\n"), std::runtime_error);
}

TEST(QTable, LoadCsvRejectsMalformedCells) {
  QTable q(2, 2);
  // strtoull/strtod with a null endptr used to read these as 0 — the corrupt
  // row would silently overwrite entry (0, 0).
  EXPECT_THROW(q.load_csv("state,action,q,visits\nabc,0,1.0,0\n"),
               std::runtime_error);
  EXPECT_THROW(q.load_csv("state,action,q,visits\n0,0,notanumber,0\n"),
               std::runtime_error);
  EXPECT_THROW(q.load_csv("state,action,q,visits\n0,0,1.5x,0\n"),
               std::runtime_error);
  EXPECT_THROW(q.load_csv("state,action,q,visits\n0,0,1.0,-3\n"),
               std::runtime_error);
  // A row too short for the mandatory columns names its width.
  EXPECT_THROW(q.load_csv("state,action,q,visits\n0,0\n"),
               std::runtime_error);
}

TEST(QTable, LoadCsvRejectsDuplicateEntries) {
  QTable q(2, 2);
  try {
    q.load_csv("state,action,q,visits\n0,1,1.0,0\n0,1,2.0,0\n");
    FAIL() << "duplicate (state, action) did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("(0, 1)"), std::string::npos);
  }
}

TEST(QTable, LoadCsvFailureLeavesTableUnchanged) {
  QTable q(2, 2);
  q.set_q(0, 0, 7.0);
  q.set_q(1, 1, -2.0);
  // Row 0 is valid and targets (0, 0); row 1 is corrupt. A partial apply
  // would clobber (0, 0) before throwing — the staged commit must not.
  EXPECT_THROW(q.load_csv("state,action,q,visits\n0,0,99.0,0\n1,1,bad,0\n"),
               std::runtime_error);
  EXPECT_DOUBLE_EQ(q.q(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(q.q(1, 1), -2.0);
}

/// Property: the Bellman update is a contraction: Q values remain bounded by
/// r_max / (1 - discount) for bounded rewards.
class QTableContraction : public ::testing::TestWithParam<double> {};

TEST_P(QTableContraction, ValuesStayBounded) {
  const double discount = GetParam();
  QTable q(5, 3);
  const double r_max = 2.0;
  const double bound = r_max / (1.0 - discount) + 1e-9;
  std::uint64_t rngstate = 7;
  for (int i = 0; i < 5000; ++i) {
    const auto s = static_cast<std::size_t>(common::splitmix64_next(rngstate) % 5);
    const auto a = static_cast<std::size_t>(common::splitmix64_next(rngstate) % 3);
    const auto sn = static_cast<std::size_t>(common::splitmix64_next(rngstate) % 5);
    const double r = r_max * (static_cast<double>(common::splitmix64_next(rngstate) % 1000) / 500.0 - 1.0);
    q.update(s, a, r, sn, 0.3, discount);
  }
  for (std::size_t s = 0; s < 5; ++s) {
    for (std::size_t a = 0; a < 3; ++a) {
      EXPECT_LE(std::abs(q.q(s, a)), bound);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Discounts, QTableContraction,
                         ::testing::Values(0.1, 0.5, 0.9));

}  // namespace
}  // namespace prime::rtm
