/// \file test_telemetry.cpp
/// \brief Tests for the streaming telemetry API: sink ordering and
///        begin/end delivery, the sink library, aggregate-vs-trace parity,
///        and registry spec diagnostics.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "gov/simple.hpp"
#include "hw/platform.hpp"
#include "rtm/manycore.hpp"
#include "sim/experiment.hpp"
#include "sim/telemetry.hpp"
#include "wl/fft.hpp"

namespace prime::sim {
namespace {

wl::Application make_app(std::size_t frames, double fps = 30.0) {
  wl::WorkloadTrace trace =
      wl::FftTraceGenerator::paper_fft().generate(frames, 1);
  trace = trace.scaled_to_mean(0.45 * 4.0 * 2.0e9 / fps);
  return wl::Application("fft", std::move(trace), fps);
}

/// Appends every event it receives to a shared log, for ordering assertions.
class EventLogSink final : public TelemetrySink {
 public:
  EventLogSink(std::string tag, std::vector<std::string>& log)
      : tag_(std::move(tag)), log_(&log) {}

  void on_run_begin(const RunContext& ctx) override {
    log_->push_back(tag_ + ":begin:" + ctx.governor + ":" + ctx.application +
                    ":" + std::to_string(ctx.frames));
  }
  void on_epoch(const EpochRecord& record, gov::Governor&) override {
    log_->push_back(tag_ + ":epoch:" + std::to_string(record.epoch));
  }
  void on_run_end(const RunResult& result) override {
    log_->push_back(tag_ + ":end:" + std::to_string(result.epoch_count));
  }

 private:
  std::string tag_;
  std::vector<std::string>* log_;
};

TEST(Telemetry, SinksReceiveEventsInAttachmentOrder) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(3);
  gov::PerformanceGovernor g;

  std::vector<std::string> log;
  EventLogSink first("a", log);
  EventLogSink second("b", log);
  RunOptions opt;
  opt.sinks = {&first, &second};
  (void)run_simulation(*platform, app, g, opt);

  const std::vector<std::string> expected{
      "a:begin:performance:fft:3", "b:begin:performance:fft:3",
      "a:epoch:0", "b:epoch:0",
      "a:epoch:1", "b:epoch:1",
      "a:epoch:2", "b:epoch:2",
      "a:end:3",   "b:end:3"};
  EXPECT_EQ(log, expected);
}

TEST(Telemetry, RunEndDeliversFinalAggregates) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(20);
  gov::PerformanceGovernor g;

  RunResult seen_at_end;
  class EndCapture final : public TelemetrySink {
   public:
    explicit EndCapture(RunResult& out) : out_(&out) {}
    void on_epoch(const EpochRecord&, gov::Governor&) override {}
    void on_run_end(const RunResult& result) override { *out_ = result; }

   private:
    RunResult* out_;
  } capture(seen_at_end);

  RunOptions opt;
  opt.sinks = {&capture};
  const RunResult r = run_simulation(*platform, app, g, opt);
  EXPECT_EQ(seen_at_end.epoch_count, r.epoch_count);
  EXPECT_DOUBLE_EQ(seen_at_end.total_energy, r.total_energy);
  EXPECT_DOUBLE_EQ(seen_at_end.measured_energy, r.measured_energy);
}

TEST(Telemetry, AggregateAndTraceAgreeOnTenThousandFrames) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(10000);
  gov::PerformanceGovernor g;

  AggregateSink aggregate;
  TraceSink trace;
  RunOptions opt;
  opt.sinks = {&aggregate, &trace};
  const RunResult r = run_simulation(*platform, app, g, opt);
  ASSERT_EQ(trace.records().size(), 10000u);

  // O(n) recomputation over the full trace — exactly what the pre-streaming
  // RunResult helpers did on every call — must agree bit-for-bit with the
  // O(1) aggregate-backed helpers (the summation order is identical).
  double perf_sum = 0.0;
  double power_sum = 0.0;
  double energy = 0.0;
  std::size_t misses = 0;
  for (const auto& e : trace.records()) {
    perf_sum += e.period > 0.0 ? e.frame_time / e.period : 0.0;
    power_sum += e.sensor_power;
    energy += e.energy;
    if (!e.deadline_met) ++misses;
  }
  const auto n = static_cast<double>(trace.records().size());
  EXPECT_DOUBLE_EQ(r.mean_normalized_performance(), perf_sum / n);
  EXPECT_DOUBLE_EQ(r.mean_power(), power_sum / n);
  EXPECT_DOUBLE_EQ(r.miss_rate(), static_cast<double>(misses) / n);
  EXPECT_DOUBLE_EQ(r.total_energy, energy);

  // The attached AggregateSink saw the same stream: full parity.
  EXPECT_EQ(aggregate.result().epoch_count, r.epoch_count);
  EXPECT_DOUBLE_EQ(aggregate.result().total_energy, r.total_energy);
  EXPECT_DOUBLE_EQ(aggregate.result().measured_energy, r.measured_energy);
  EXPECT_DOUBLE_EQ(aggregate.result().performance_sum, r.performance_sum);
  EXPECT_DOUBLE_EQ(aggregate.result().power_sum, r.power_sum);
  EXPECT_EQ(aggregate.result().deadline_misses, r.deadline_misses);
}

TEST(Telemetry, CsvSinkMatchesLegacySeriesFormat) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(40);
  gov::PerformanceGovernor g;

  TraceSink trace;
  std::ostringstream streamed;
  CsvSink csv(streamed);
  RunOptions opt;
  opt.sinks = {&trace, &csv};
  (void)run_simulation(*platform, app, g, opt);
  EXPECT_EQ(csv.rows_written(), 40u);

  // The retired write_series_csv(extract_series(run)) path, reproduced
  // verbatim: the streaming sink's output must be byte-identical.
  std::ostringstream legacy;
  common::CsvWriter writer(legacy);
  writer.header({"frame", "demand", "freq_mhz", "slack", "power_w",
                 "energy_mj"});
  for (const auto& e : trace.records()) {
    writer.row({static_cast<double>(e.epoch), static_cast<double>(e.demand),
                common::to_mhz(e.frequency), e.slack, e.sensor_power,
                common::to_mj(e.energy)});
  }
  EXPECT_EQ(streamed.str(), legacy.str());

  // And it still parses back through the CSV reader.
  const common::CsvTable table = common::parse_csv(streamed.str());
  ASSERT_EQ(table.rows.size(), 40u);
  EXPECT_DOUBLE_EQ(table.column_as_double("frame")[39], 39.0);
}

TEST(Telemetry, TailSinkKeepsOnlyTheLastWindow) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(50);
  gov::PerformanceGovernor g;

  TraceSink trace;
  TailSink tail(8);
  RunOptions opt;
  opt.sinks = {&trace, &tail};
  (void)run_simulation(*platform, app, g, opt);

  ASSERT_TRUE(tail.buffer().full());
  const std::vector<EpochRecord> window = tail.records();
  ASSERT_EQ(window.size(), 8u);
  // Wraparound: the window is exactly the last 8 traced records, in order.
  for (std::size_t i = 0; i < window.size(); ++i) {
    const EpochRecord& expected = trace.records()[50 - 8 + i];
    EXPECT_EQ(window[i].epoch, expected.epoch);
    EXPECT_DOUBLE_EQ(window[i].energy, expected.energy);
  }
}

TEST(Telemetry, SinksRestartCleanlyAcrossConsecutiveRuns) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(30);
  gov::PerformanceGovernor g;

  TraceSink trace;
  TailSink tail(100);  // capacity above run length: size shows the reset
  RunOptions opt;
  opt.sinks = {&trace, &tail};
  (void)run_simulation(*platform, app, g, opt);
  (void)run_simulation(*platform, app, g, opt);
  EXPECT_EQ(trace.records().size(), 30u);  // not 60: cleared at run begin
  EXPECT_EQ(tail.buffer().size(), 30u);
}

TEST(Telemetry, ConvergenceSinkTracksLearningGovernors) {
  auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "mpeg4";
  spec.fps = 30.0;
  spec.frames = 900;
  spec.seed = 3;
  const wl::Application app = make_application(spec, *platform);

  rtm::ManycoreRtmGovernor rtm;
  ConvergenceSink convergence(25);
  RunOptions opt;
  opt.sinks = {&convergence};
  (void)run_simulation(*platform, app, rtm, opt);
  ASSERT_TRUE(convergence.converged());
  EXPECT_GT(convergence.convergence_epoch(), 0u);
  EXPECT_LE(convergence.explorations_at_convergence(),
            rtm.exploration_count());

  // Non-learning governors are ignored rather than crashing the probe.
  gov::PerformanceGovernor fixed;
  ConvergenceSink untouched(25);
  RunOptions opt2;
  opt2.sinks = {&untouched};
  (void)run_simulation(*platform, app, fixed, opt2);
  EXPECT_FALSE(untouched.converged());
}

TEST(Telemetry, ConvergenceSinkUnwrapsDecoratedLearners) {
  // A learner wrapped in the thermal-cap decorator still converges: the sink
  // follows Governor::inner_governor() to reach the learning core.
  auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "mpeg4";
  spec.fps = 30.0;
  spec.frames = 900;
  spec.seed = 3;
  const wl::Application app = make_application(spec, *platform);

  const auto wrapped = make_governor("thermal-cap(inner=rtm-manycore)");
  ConvergenceSink convergence(25);
  RunOptions opt;
  opt.sinks = {&convergence};
  (void)run_simulation(*platform, app, *wrapped, opt);
  EXPECT_TRUE(convergence.converged());
  EXPECT_GT(convergence.convergence_epoch(), 0u);
}

TEST(Telemetry, RegistryBuildsEverySinkFromSpecs) {
  const std::vector<std::string> names = sink_names();
  for (const auto& expected :
       {"aggregate", "convergence", "csv", "tail", "trace"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_NE(dynamic_cast<TailSink*>(make_sink("tail(n=7)").get()), nullptr);
  EXPECT_NE(dynamic_cast<TraceSink*>(make_sink("trace").get()), nullptr);
  EXPECT_NE(dynamic_cast<AggregateSink*>(make_sink("aggregate").get()),
            nullptr);
  EXPECT_NE(dynamic_cast<ConvergenceSink*>(
                make_sink("convergence(stable=10)").get()),
            nullptr);
}

TEST(Telemetry, SpecErrorsSuggestTheRightName) {
  // Unknown sink name: did-you-mean the registered one.
  try {
    (void)make_sink("tracee");
    FAIL() << "expected UnknownNameError";
  } catch (const common::UnknownNameError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Did you mean 'trace'?"), std::string::npos) << what;
  }
  // Typo'd key on a known sink: did-you-mean the supported key.
  try {
    (void)make_sink("csv(pth=/tmp/out.csv)");
    FAIL() << "expected UnknownKeyError";
  } catch (const common::UnknownKeyError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Did you mean 'path'?"), std::string::npos) << what;
  }
  EXPECT_THROW((void)make_sink("tail(m=9)"), common::UnknownKeyError);
  // Out-of-range values fail with a spec error, not an allocation blow-up.
  EXPECT_THROW((void)make_sink("tail(n=-1)"), std::invalid_argument);
  EXPECT_THROW((void)make_sink("tail(n=0)"), std::invalid_argument);
  EXPECT_THROW((void)make_sink("tail(n=9000000000)"), std::invalid_argument);
  EXPECT_THROW((void)make_sink("convergence(stable=-1)"),
               std::invalid_argument);
}

TEST(Telemetry, RejectedCsvSpecNeverTouchesTheTargetFile) {
  // CsvSink opens its file lazily at run begin, so a spec rejected for a
  // typo'd key (or a trial-constructed, discarded sink) must leave existing
  // data intact.
  const std::string path = testing::TempDir() + "precious.csv";
  {
    std::ofstream out(path);
    out << "do-not-truncate\n";
  }
  EXPECT_THROW((void)make_sink("csv(path=" + path + ",appnd=1)"),
               common::UnknownKeyError);
  (void)make_sink("csv(path=" + path + ")");  // constructed, never run
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "do-not-truncate");
}

TEST(Telemetry, SampleSinkForwardsFirstAndEveryNthEpoch) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(25);
  gov::PerformanceGovernor g;
  auto sink = make_sink("sample(every=10,inner=trace)");
  auto* sample = dynamic_cast<SampleSink*>(sink.get());
  ASSERT_NE(sample, nullptr);
  RunOptions opt;
  opt.sinks = {sink.get()};
  (void)run_simulation(*platform, app, g, opt);
  EXPECT_EQ(sample->seen(), 25u);
  EXPECT_EQ(sample->forwarded(), 3u);
  auto& inner = dynamic_cast<TraceSink&>(sample->inner());
  ASSERT_EQ(inner.records().size(), 3u);
  EXPECT_EQ(inner.records()[0].epoch, 0u);
  EXPECT_EQ(inner.records()[1].epoch, 10u);
  EXPECT_EQ(inner.records()[2].epoch, 20u);
}

TEST(Telemetry, SampleSinkRestartsAcrossRuns) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(12);
  gov::PerformanceGovernor g;
  SampleSink sample(5, make_sink("trace"));
  RunOptions opt;
  opt.sinks = {&sample};
  (void)run_simulation(*platform, app, g, opt);
  (void)run_simulation(*platform, app, g, opt);
  // Decimation restarts at epoch 0 of the second run: 0, 5, 10 again.
  EXPECT_EQ(sample.seen(), 12u);
  EXPECT_EQ(sample.forwarded(), 3u);
  const auto& inner = dynamic_cast<TraceSink&>(sample.inner());
  ASSERT_EQ(inner.records().size(), 3u);  // TraceSink cleared at run begin
  EXPECT_EQ(inner.records()[1].epoch, 5u);
}

TEST(Telemetry, SampleSinkBoundsCsvRowsOnLongRuns) {
  // The ROADMAP use case: an unbounded-length run with a decimated CSV
  // writes one row per `every` epochs instead of one per epoch.
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(2000);
  gov::PerformanceGovernor g;
  const std::string path = testing::TempDir() + "sampled.csv";
  auto sink = make_sink("sample(every=100,inner=csv(path=" + path + "))");
  RunOptions opt;
  opt.sinks = {sink.get()};
  (void)run_simulation(*platform, app, g, opt);
  sink.reset();  // flush
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 21u);  // header + 2000/100 rows
}

TEST(Telemetry, SampleSinkSpecValidation) {
  EXPECT_NE(dynamic_cast<SampleSink*>(
                make_sink("sample(every=3,inner=tail(n=4))").get()),
            nullptr);
  EXPECT_THROW((void)make_sink("sample(every=0,inner=trace)"),
               std::invalid_argument);
  EXPECT_THROW((void)make_sink("sample(every=-2,inner=trace)"),
               std::invalid_argument);
  EXPECT_THROW((void)make_sink("sample(inner=trace)"), std::invalid_argument);
  EXPECT_THROW((void)make_sink("sample(every=10)"), std::invalid_argument);
  // A typo'd *inner* spec surfaces the registry's did-you-mean diagnostics.
  EXPECT_THROW((void)make_sink("sample(every=10,inner=tracee)"),
               common::UnknownNameError);
}

TEST(Telemetry, AggregateOnlyRunHasNoPerEpochState) {
  // The headline property: run length shows up nowhere in the result's
  // footprint — RunResult is the same fixed-size aggregate struct whether
  // the run was 10 frames or 10k (the 1M-frame version of this check runs
  // as the CI long-run smoke with an RSS bound).
  auto platform = hw::Platform::odroid_xu3_a15();
  gov::PerformanceGovernor g;
  const RunResult small = run_simulation(*platform, make_app(10), g);
  const RunResult large = run_simulation(*platform, make_app(10000), g);
  EXPECT_EQ(small.epoch_count, 10u);
  EXPECT_EQ(large.epoch_count, 10000u);
  // Dependent context keeps the probe a soft constraint check.
  static_assert([]<class T = RunResult>() {
    return !requires(T r) { r.epochs; };
  }(), "RunResult must not carry a per-epoch container");
}

}  // namespace
}  // namespace prime::sim
