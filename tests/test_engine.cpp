/// \file test_engine.cpp
/// \brief Unit tests for the simulation engine.
#include <gtest/gtest.h>

#include "gov/oracle.hpp"
#include "gov/simple.hpp"
#include "hw/platform.hpp"
#include "sim/engine.hpp"
#include "wl/fft.hpp"

namespace prime::sim {
namespace {

wl::Application make_app(std::size_t frames = 50, double fps = 30.0) {
  wl::WorkloadTrace trace =
      wl::FftTraceGenerator::paper_fft().generate(frames, 1);
  // Scale to a comfortable mid-table load for a 4x2 GHz cluster.
  trace = trace.scaled_to_mean(0.45 * 4.0 * 2.0e9 / fps);
  return wl::Application("fft", std::move(trace), fps);
}

TEST(Engine, RunsWholeTraceByDefault) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(50);
  gov::PerformanceGovernor g;
  const RunResult r = run_simulation(*platform, app, g);
  EXPECT_EQ(r.epochs.size(), 50u);
  EXPECT_EQ(r.governor, "performance");
  EXPECT_EQ(r.application, "fft");
}

TEST(Engine, MaxFramesLimits) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(50);
  gov::PerformanceGovernor g;
  RunOptions opt;
  opt.max_frames = 10;
  EXPECT_EQ(run_simulation(*platform, app, g, opt).epochs.size(), 10u);
}

TEST(Engine, EnergyAndTimeAccumulate) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(30, 30.0);
  gov::PerformanceGovernor g;
  const RunResult r = run_simulation(*platform, app, g);
  EXPECT_GT(r.total_energy, 0.0);
  EXPECT_NEAR(r.total_time, 30.0 / 30.0, 0.05);  // ~1 s of frames
  EXPECT_GT(r.measured_energy, 0.0);
  // Sensor energy within a few percent of true model energy.
  EXPECT_NEAR(r.measured_energy / r.total_energy, 1.0, 0.05);
}

TEST(Engine, PerformanceGovernorMeetsAllDeadlines) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(100);
  gov::PerformanceGovernor g;
  const RunResult r = run_simulation(*platform, app, g);
  EXPECT_EQ(r.deadline_misses, 0u);
  EXPECT_DOUBLE_EQ(r.miss_rate(), 0.0);
}

TEST(Engine, PowersaveGovernorMissesEverything) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(50);
  gov::PowersaveGovernor g;
  const RunResult r = run_simulation(*platform, app, g);
  // 10x too slow at 200 MHz: every frame overruns.
  EXPECT_GT(r.miss_rate(), 0.9);
  EXPECT_GT(r.mean_normalized_performance(), 1.5);
}

TEST(Engine, OracleReceivesPreviews) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(100);
  gov::OracleGovernor g;
  const RunResult r = run_simulation(*platform, app, g);
  EXPECT_EQ(r.deadline_misses, 0u);
  // Oracle must beat the performance governor on energy.
  auto platform2 = hw::Platform::odroid_xu3_a15();
  gov::PerformanceGovernor perf;
  const RunResult rp = run_simulation(*platform2, app, perf);
  EXPECT_LT(r.total_energy, rp.total_energy);
}

TEST(Engine, CallbackSeesEveryEpoch) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(25);
  gov::PerformanceGovernor g;
  RunOptions opt;
  std::size_t calls = 0;
  opt.on_epoch = [&calls](const EpochRecord& e, gov::Governor&) {
    EXPECT_EQ(e.epoch, calls);
    ++calls;
  };
  (void)run_simulation(*platform, app, g, opt);
  EXPECT_EQ(calls, 25u);
}

TEST(Engine, DeterministicReplay) {
  const wl::Application app = make_app(60);
  auto p1 = hw::Platform::odroid_xu3_a15();
  auto p2 = hw::Platform::odroid_xu3_a15();
  gov::PerformanceGovernor g1;
  gov::PerformanceGovernor g2;
  const RunResult a = run_simulation(*p1, app, g1);
  const RunResult b = run_simulation(*p2, app, g2);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
  EXPECT_DOUBLE_EQ(a.measured_energy, b.measured_energy);
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].opp_index, b.epochs[i].opp_index);
    EXPECT_DOUBLE_EQ(a.epochs[i].energy, b.epochs[i].energy);
  }
}

TEST(Engine, GovernorOverheadExecutesAsCycles) {
  // demand excludes overhead, executed includes it.
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(10);
  gov::PerformanceGovernor g;  // 2 us overhead
  const RunResult r = run_simulation(*platform, app, g);
  for (const auto& e : r.epochs) {
    EXPECT_GT(e.executed, e.demand);
  }
}

TEST(Engine, RecordsConsistentSlack) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(20);
  gov::PerformanceGovernor g;
  const RunResult r = run_simulation(*platform, app, g);
  for (const auto& e : r.epochs) {
    EXPECT_NEAR(e.slack, (e.period - e.frame_time) / e.period, 1e-12);
    EXPECT_EQ(e.deadline_met, e.frame_time <= e.period);
  }
}

TEST(RunResult, EmptyAggregates) {
  const RunResult r;
  EXPECT_DOUBLE_EQ(r.mean_normalized_performance(), 0.0);
  EXPECT_DOUBLE_EQ(r.miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_power(), 0.0);
}

}  // namespace
}  // namespace prime::sim
