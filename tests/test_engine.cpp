/// \file test_engine.cpp
/// \brief Unit tests for the simulation engine.
#include <gtest/gtest.h>

#include <memory>

#include "gov/oracle.hpp"
#include "gov/simple.hpp"
#include "hw/platform.hpp"
#include "sim/engine.hpp"
#include "sim/telemetry.hpp"
#include "wl/fft.hpp"
#include "wl/frame_source.hpp"

namespace prime::sim {
namespace {

wl::Application make_app(std::size_t frames = 50, double fps = 30.0) {
  wl::WorkloadTrace trace =
      wl::FftTraceGenerator::paper_fft().generate(frames, 1);
  // Scale to a comfortable mid-table load for a 4x2 GHz cluster.
  trace = trace.scaled_to_mean(0.45 * 4.0 * 2.0e9 / fps);
  return wl::Application("fft", std::move(trace), fps);
}

TEST(Engine, RunsWholeTraceByDefault) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(50);
  gov::PerformanceGovernor g;
  const RunResult r = run_simulation(*platform, app, g);
  EXPECT_EQ(r.epoch_count, 50u);
  EXPECT_EQ(r.governor, "performance");
  EXPECT_EQ(r.application, "fft");
}

TEST(Engine, MaxFramesLimits) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(50);
  gov::PerformanceGovernor g;
  RunOptions opt;
  opt.max_frames = 10;
  EXPECT_EQ(run_simulation(*platform, app, g, opt).epoch_count, 10u);
}

TEST(Engine, MaxFramesBeyondTraceClampsToTrace) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(50);
  gov::PerformanceGovernor g;
  RunOptions opt;
  opt.max_frames = 5000;
  EXPECT_EQ(run_simulation(*platform, app, g, opt).epoch_count, 50u);
}

TEST(Engine, EmptyTraceRunsZeroEpochs) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app("empty", wl::WorkloadTrace{}, 30.0);
  gov::PerformanceGovernor g;
  TraceSink trace;
  RunOptions opt;
  opt.sinks = {&trace};
  const RunResult r = run_simulation(*platform, app, g, opt);
  EXPECT_EQ(r.epoch_count, 0u);
  EXPECT_DOUBLE_EQ(r.total_energy, 0.0);
  EXPECT_DOUBLE_EQ(r.miss_rate(), 0.0);
  EXPECT_TRUE(trace.records().empty());  // run-begin/run-end still delivered
}

TEST(Engine, StreamingApplicationRequiresMaxFrames) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const auto generator =
      std::make_shared<wl::FftTraceGenerator>(wl::FftTraceGenerator::paper_fft());
  const wl::Application app(
      "fft", [generator] { return generator->stream(1); }, 30.0);
  gov::PerformanceGovernor g;
  // max_frames == 0 would mean "run forever" on an unbounded source.
  EXPECT_THROW((void)run_simulation(*platform, app, g), std::invalid_argument);
  RunOptions opt;
  opt.max_frames = 40;
  EXPECT_EQ(run_simulation(*platform, app, g, opt).epoch_count, 40u);
}

TEST(Engine, StreamingRunMatchesTraceReplayExactly) {
  // End-to-end equivalence: a streamed run and a trace-replay run of the
  // same (generator, seed) execute the identical demand sequence, so every
  // aggregate is bit-identical.
  const std::size_t frames = 60;
  const auto generator =
      std::make_shared<wl::FftTraceGenerator>(wl::FftTraceGenerator::paper_fft());
  const wl::Application replayed("fft", generator->generate(frames, 9), 30.0);
  const wl::Application streamed(
      "fft", [generator] { return generator->stream(9); }, 30.0);

  auto p1 = hw::Platform::odroid_xu3_a15();
  auto p2 = hw::Platform::odroid_xu3_a15();
  gov::PerformanceGovernor g1;
  gov::PerformanceGovernor g2;
  RunOptions stream_opt;
  stream_opt.max_frames = frames;
  const RunResult a = run_simulation(*p1, replayed, g1);
  const RunResult b = run_simulation(*p2, streamed, g2, stream_opt);
  EXPECT_EQ(a.epoch_count, b.epoch_count);
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
  EXPECT_DOUBLE_EQ(a.measured_energy, b.measured_energy);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
}

TEST(Engine, StreamingRunsRepeatDeterministically) {
  // Two consecutive runs on the same streaming Application rewind the
  // source and replay the identical sequence.
  const auto generator =
      std::make_shared<wl::FftTraceGenerator>(wl::FftTraceGenerator::paper_fft());
  const wl::Application app(
      "fft", [generator] { return generator->stream(5); }, 30.0);
  RunOptions opt;
  opt.max_frames = 30;
  auto p1 = hw::Platform::odroid_xu3_a15();
  auto p2 = hw::Platform::odroid_xu3_a15();
  gov::PerformanceGovernor g1;
  gov::PerformanceGovernor g2;
  const RunResult a = run_simulation(*p1, app, g1, opt);
  const RunResult b = run_simulation(*p2, app, g2, opt);
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
}

TEST(Engine, EnergyAndTimeAccumulate) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(30, 30.0);
  gov::PerformanceGovernor g;
  const RunResult r = run_simulation(*platform, app, g);
  EXPECT_GT(r.total_energy, 0.0);
  EXPECT_NEAR(r.total_time, 30.0 / 30.0, 0.05);  // ~1 s of frames
  EXPECT_GT(r.measured_energy, 0.0);
  // Sensor energy within a few percent of true model energy.
  EXPECT_NEAR(r.measured_energy / r.total_energy, 1.0, 0.05);
}

TEST(Engine, PerformanceGovernorMeetsAllDeadlines) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(100);
  gov::PerformanceGovernor g;
  const RunResult r = run_simulation(*platform, app, g);
  EXPECT_EQ(r.deadline_misses, 0u);
  EXPECT_DOUBLE_EQ(r.miss_rate(), 0.0);
}

TEST(Engine, PowersaveGovernorMissesEverything) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(50);
  gov::PowersaveGovernor g;
  const RunResult r = run_simulation(*platform, app, g);
  // 10x too slow at 200 MHz: every frame overruns.
  EXPECT_GT(r.miss_rate(), 0.9);
  EXPECT_GT(r.mean_normalized_performance(), 1.5);
}

TEST(Engine, OracleReceivesPreviews) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(100);
  gov::OracleGovernor g;
  const RunResult r = run_simulation(*platform, app, g);
  EXPECT_EQ(r.deadline_misses, 0u);
  // Oracle must beat the performance governor on energy.
  auto platform2 = hw::Platform::odroid_xu3_a15();
  gov::PerformanceGovernor perf;
  const RunResult rp = run_simulation(*platform2, app, perf);
  EXPECT_LT(r.total_energy, rp.total_energy);
}

TEST(Engine, CallbackSinkSeesEveryEpoch) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(25);
  gov::PerformanceGovernor g;
  std::size_t calls = 0;
  CallbackSink probe([&calls](const EpochRecord& e, gov::Governor&) {
    EXPECT_EQ(e.epoch, calls);
    ++calls;
  });
  RunOptions opt;
  opt.sinks = {&probe};
  (void)run_simulation(*platform, app, g, opt);
  EXPECT_EQ(calls, 25u);
}

TEST(Engine, DeterministicReplay) {
  const wl::Application app = make_app(60);
  auto p1 = hw::Platform::odroid_xu3_a15();
  auto p2 = hw::Platform::odroid_xu3_a15();
  gov::PerformanceGovernor g1;
  gov::PerformanceGovernor g2;
  TraceSink t1;
  TraceSink t2;
  RunOptions o1;
  o1.sinks = {&t1};
  RunOptions o2;
  o2.sinks = {&t2};
  const RunResult a = run_simulation(*p1, app, g1, o1);
  const RunResult b = run_simulation(*p2, app, g2, o2);
  ASSERT_EQ(a.epoch_count, b.epoch_count);
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
  EXPECT_DOUBLE_EQ(a.measured_energy, b.measured_energy);
  ASSERT_EQ(t1.records().size(), t2.records().size());
  for (std::size_t i = 0; i < t1.records().size(); ++i) {
    EXPECT_EQ(t1.records()[i].opp_index, t2.records()[i].opp_index);
    EXPECT_DOUBLE_EQ(t1.records()[i].energy, t2.records()[i].energy);
  }
}

TEST(Engine, GovernorOverheadExecutesAsCycles) {
  // demand excludes overhead, executed includes it.
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(10);
  gov::PerformanceGovernor g;  // 2 us overhead
  TraceSink trace;
  RunOptions opt;
  opt.sinks = {&trace};
  (void)run_simulation(*platform, app, g, opt);
  ASSERT_EQ(trace.records().size(), 10u);
  for (const auto& e : trace.records()) {
    EXPECT_GT(e.executed, e.demand);
  }
}

TEST(Engine, RecordsConsistentSlack) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(20);
  gov::PerformanceGovernor g;
  TraceSink trace;
  RunOptions opt;
  opt.sinks = {&trace};
  (void)run_simulation(*platform, app, g, opt);
  ASSERT_EQ(trace.records().size(), 20u);
  for (const auto& e : trace.records()) {
    EXPECT_NEAR(e.slack, (e.period - e.frame_time) / e.period, 1e-12);
    EXPECT_EQ(e.deadline_met, e.frame_time <= e.period);
  }
}

TEST(RunResult, EmptyAggregates) {
  const RunResult r;
  EXPECT_DOUBLE_EQ(r.mean_normalized_performance(), 0.0);
  EXPECT_DOUBLE_EQ(r.miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_power(), 0.0);
}

TEST(RunResult, AccumulateMaintainsAggregates) {
  RunResult r;
  EpochRecord hit;
  hit.period = 0.040;
  hit.frame_time = 0.030;
  hit.window = 0.040;
  hit.energy = 0.5;
  hit.sensor_power = 2.0;
  hit.deadline_met = true;
  EpochRecord miss = hit;
  miss.frame_time = 0.050;
  miss.window = 0.050;
  miss.sensor_power = 4.0;
  miss.deadline_met = false;
  r.accumulate(hit);
  r.accumulate(miss);
  EXPECT_EQ(r.epoch_count, 2u);
  EXPECT_DOUBLE_EQ(r.total_energy, 1.0);
  EXPECT_DOUBLE_EQ(r.total_time, 0.090);
  EXPECT_EQ(r.deadline_misses, 1u);
  EXPECT_DOUBLE_EQ(r.miss_rate(), 0.5);
  EXPECT_DOUBLE_EQ(r.mean_power(), 3.0);
  EXPECT_DOUBLE_EQ(r.mean_normalized_performance(), (0.75 + 1.25) / 2.0);
}

}  // namespace
}  // namespace prime::sim
