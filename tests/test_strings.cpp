/// \file test_strings.cpp
/// \brief Unit tests for string utilities.
#include <gtest/gtest.h>

#include "common/strings.hpp"

namespace prime::common {
namespace {

TEST(Split, BasicAndEmptyFields) {
  const auto v = split("a,b,,c", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[2], "");
  EXPECT_EQ(v[3], "c");
}

TEST(Split, NoSeparator) {
  const auto v = split("abc", ',');
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "abc");
}

TEST(Split, TrailingSeparator) {
  const auto v = split("a,", ',');
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1], "");
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("inner space kept"), "inner space kept");
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(to_lower("MiXeD 123"), "mixed 123");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("prime-rtm", "prime"));
  EXPECT_FALSE(starts_with("rtm", "prime"));
  EXPECT_TRUE(ends_with("table1.csv", ".csv"));
  EXPECT_FALSE(ends_with(".csv", "table1.csv"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 4), "abcd");  // truncates
  EXPECT_EQ(pad_right("abcdef", 4), "abcd");
}

}  // namespace
}  // namespace prime::common
