/// \file test_opp.cpp
/// \brief Unit tests for OPP tables (the RL action space).
#include <gtest/gtest.h>

#include "hw/opp.hpp"

namespace prime::hw {
namespace {

using common::mhz;

TEST(OppTable, OdroidXu3HasPaperActionSpace) {
  const OppTable t = OppTable::odroid_xu3_a15();
  EXPECT_EQ(t.size(), 19u);  // |A| in the paper
  EXPECT_DOUBLE_EQ(t.min().frequency, mhz(200.0));
  EXPECT_DOUBLE_EQ(t.max().frequency, mhz(2000.0));
  // 100 MHz steps throughout.
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_NEAR(t.at(i).frequency - t.at(i - 1).frequency, mhz(100.0), 1.0);
  }
}

TEST(OppTable, Xu3VoltageCurveEndpoints) {
  const OppTable t = OppTable::odroid_xu3_a15();
  EXPECT_NEAR(t.min().voltage, 0.9000, 1e-9);
  EXPECT_NEAR(t.max().voltage, 1.3625, 1e-9);
  // Voltage must rise monotonically with frequency.
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GT(t.at(i).voltage, t.at(i - 1).voltage);
  }
}

TEST(OppTable, ConstructorSortsAndReindexes) {
  const OppTable t({Opp{0, mhz(800.0), 1.0}, Opp{0, mhz(200.0), 0.9},
                    Opp{0, mhz(1400.0), 1.1}});
  EXPECT_DOUBLE_EQ(t.at(0).frequency, mhz(200.0));
  EXPECT_DOUBLE_EQ(t.at(2).frequency, mhz(1400.0));
  EXPECT_EQ(t.at(1).index, 1u);
}

TEST(OppTable, RejectsInvalidPoints) {
  EXPECT_THROW(OppTable({}), std::invalid_argument);
  EXPECT_THROW(OppTable({Opp{0, 0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(OppTable({Opp{0, mhz(100.0), -1.0}}), std::invalid_argument);
}

TEST(OppTable, LowestAtLeastIsOracleLookup) {
  const OppTable t = OppTable::odroid_xu3_a15();
  EXPECT_EQ(t.lowest_at_least(mhz(1.0)), 0u);
  EXPECT_EQ(t.lowest_at_least(mhz(200.0)), 0u);
  EXPECT_EQ(t.lowest_at_least(mhz(201.0)), 1u);
  EXPECT_EQ(t.lowest_at_least(mhz(1999.0)), 18u);
  // Infeasible demand clamps to the fastest point.
  EXPECT_EQ(t.lowest_at_least(mhz(5000.0)), 18u);
}

TEST(OppTable, HighestAtMost) {
  const OppTable t = OppTable::odroid_xu3_a15();
  EXPECT_EQ(t.highest_at_most(mhz(1999.0)), 17u);
  EXPECT_EQ(t.highest_at_most(mhz(2000.0)), 18u);
  EXPECT_EQ(t.highest_at_most(mhz(100.0)), 0u);  // none qualifies -> slowest
}

TEST(OppTable, Nearest) {
  const OppTable t = OppTable::odroid_xu3_a15();
  EXPECT_EQ(t.nearest(mhz(1049.0)), 8u);   // 1000 MHz
  EXPECT_EQ(t.nearest(mhz(1051.0)), 9u);   // 1100 MHz
  EXPECT_EQ(t.nearest(mhz(0.0)), 0u);
  EXPECT_EQ(t.nearest(mhz(9999.0)), 18u);
}

TEST(OppTable, ClampIndex) {
  const OppTable t = OppTable::odroid_xu3_a15();
  EXPECT_EQ(t.clamp_index(-5), 0u);
  EXPECT_EQ(t.clamp_index(7), 7u);
  EXPECT_EQ(t.clamp_index(99), 18u);
}

TEST(OppTable, LinearFactory) {
  const OppTable t = OppTable::linear(5, mhz(100.0), mhz(500.0), 0.8, 1.2);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_DOUBLE_EQ(t.at(0).frequency, mhz(100.0));
  EXPECT_DOUBLE_EQ(t.at(4).frequency, mhz(500.0));
  EXPECT_NEAR(t.at(2).voltage, 1.0, 1e-12);
  EXPECT_THROW(OppTable::linear(0, mhz(1.0), mhz(2.0), 1.0, 1.0),
               std::invalid_argument);
}

TEST(OppTable, SinglePointLinear) {
  const OppTable t = OppTable::linear(1, mhz(600.0), mhz(600.0), 1.0, 1.0);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lowest_at_least(mhz(900.0)), 0u);
}

TEST(OppTable, DescribeMentionsRange) {
  const std::string d = OppTable::odroid_xu3_a15().describe();
  EXPECT_NE(d.find("19"), std::string::npos);
  EXPECT_NE(d.find("200"), std::string::npos);
  EXPECT_NE(d.find("2000"), std::string::npos);
}

/// Property: for every target frequency, lowest_at_least returns a point that
/// meets the target (or the max), and nothing slower would.
class OppLookupSweep : public ::testing::TestWithParam<double> {};

TEST_P(OppLookupSweep, LowestAtLeastIsTight) {
  const OppTable t = OppTable::odroid_xu3_a15();
  const common::Hertz target = mhz(GetParam());
  const std::size_t idx = t.lowest_at_least(target);
  if (t.at(idx).frequency >= target && idx > 0) {
    EXPECT_LT(t.at(idx - 1).frequency, target);
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, OppLookupSweep,
                         ::testing::Values(150.0, 200.0, 250.0, 999.0, 1000.0,
                                           1001.0, 1950.0, 2000.0, 2100.0));

}  // namespace
}  // namespace prime::hw
