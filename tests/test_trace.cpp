/// \file test_trace.cpp
/// \brief Unit tests for workload traces.
#include <gtest/gtest.h>

#include "wl/trace.hpp"

namespace prime::wl {
namespace {

WorkloadTrace make_simple() {
  return WorkloadTrace("t", {FrameDemand{100, FrameKind::kIntra},
                             FrameDemand{200, FrameKind::kPredicted},
                             FrameDemand{300, FrameKind::kBidirectional}});
}

TEST(WorkloadTrace, BasicAccessors) {
  const WorkloadTrace t = make_simple();
  EXPECT_EQ(t.size(), 3u);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.name(), "t");
  EXPECT_EQ(t.at(1).cycles, 200u);
  EXPECT_THROW((void)t.at(3), std::out_of_range);
}

TEST(WorkloadTrace, Statistics) {
  const WorkloadTrace t = make_simple();
  EXPECT_DOUBLE_EQ(t.mean_cycles(), 200.0);
  EXPECT_EQ(t.peak_cycles(), 300u);
  EXPECT_GT(t.cv(), 0.0);
}

TEST(WorkloadTrace, EmptyTraceDefaults) {
  const WorkloadTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.mean_cycles(), 0.0);
  EXPECT_EQ(t.peak_cycles(), 0u);
}

TEST(WorkloadTrace, ScaledToMean) {
  const WorkloadTrace t = make_simple();
  const WorkloadTrace s = t.scaled_to_mean(1000.0);
  EXPECT_NEAR(s.mean_cycles(), 1000.0, 1.0);
  // Round-to-nearest: no systematic downward drift, so the achieved mean
  // stays within half a cycle of the target (truncation would sit ~0.5 low).
  const WorkloadTrace fine = t.scaled_to_mean(1234.567);
  EXPECT_NEAR(fine.mean_cycles(), 1234.567, 0.5);
  // Relative shape preserved.
  EXPECT_NEAR(static_cast<double>(s.at(2).cycles) /
                  static_cast<double>(s.at(0).cycles),
              3.0, 0.01);
  // Kinds preserved.
  EXPECT_EQ(s.at(0).kind, FrameKind::kIntra);
}

TEST(WorkloadTrace, ScaleOfEmptyIsNoOp) {
  const WorkloadTrace t;
  EXPECT_TRUE(t.scaled_to_mean(100.0).empty());
}

TEST(WorkloadTrace, Prefix) {
  const WorkloadTrace t = make_simple();
  const WorkloadTrace p = t.prefix(2);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.at(1).cycles, 200u);
  EXPECT_EQ(t.prefix(99).size(), 3u);
}

TEST(WorkloadTrace, CsvRoundTrip) {
  const WorkloadTrace t = make_simple();
  const std::string csv = t.to_csv();
  const WorkloadTrace back = WorkloadTrace::from_csv("t2", csv);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.at(i).cycles, t.at(i).cycles);
    EXPECT_EQ(back.at(i).kind, t.at(i).kind);
  }
}

TEST(WorkloadTrace, FromCsvRejectsMissingColumn) {
  EXPECT_THROW(WorkloadTrace::from_csv("x", "a,b\n1,2\n"), std::runtime_error);
}

TEST(WorkloadTrace, FromCsvToleratesWhitespacePadding) {
  // strtoull always skipped leading whitespace, so padded-but-valid archives
  // (hand-edited, external exports) must keep loading under strict parsing.
  const WorkloadTrace t =
      WorkloadTrace::from_csv("x", "frame,cycles,kind\n0, 1234 ,I\n");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.at(0).cycles, 1234u);
}

TEST(WorkloadTrace, FromCsvRejectsMalformedCyclesCell) {
  // A non-numeric cycles cell must throw (as documented), not silently
  // parse to 0 the way unchecked strtoull would.
  EXPECT_THROW(WorkloadTrace::from_csv("x", "frame,cycles,kind\n0,abc,-\n"),
               std::runtime_error);
  EXPECT_THROW(WorkloadTrace::from_csv("x", "frame,cycles,kind\n0,12x,-\n"),
               std::runtime_error);
  EXPECT_THROW(WorkloadTrace::from_csv("x", "frame,cycles,kind\n0,,-\n"),
               std::runtime_error);
  EXPECT_THROW(WorkloadTrace::from_csv("x", "frame,cycles,kind\n0,-5,-\n"),
               std::runtime_error);
  EXPECT_THROW(
      WorkloadTrace::from_csv(
          "x", "frame,cycles,kind\n0,99999999999999999999999999,-\n"),
      std::runtime_error);
}

TEST(FrameKindTag, AllTags) {
  EXPECT_STREQ(frame_kind_tag(FrameKind::kIntra), "I");
  EXPECT_STREQ(frame_kind_tag(FrameKind::kPredicted), "P");
  EXPECT_STREQ(frame_kind_tag(FrameKind::kBidirectional), "B");
  EXPECT_STREQ(frame_kind_tag(FrameKind::kGeneric), "-");
}

}  // namespace
}  // namespace prime::wl
