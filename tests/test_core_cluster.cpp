/// \file test_core_cluster.cpp
/// \brief Unit tests for Core and Cluster epoch execution.
#include <gtest/gtest.h>

#include "hw/cluster.hpp"

namespace prime::hw {
namespace {

ClusterParams quiet_params() {
  ClusterParams p;
  p.cores = 4;
  p.initial_opp = 9;
  return p;
}

TEST(Core, BusyTimeIsWorkOverFrequency) {
  const PowerModel model;
  Core core(0, model);
  const Opp opp{0, common::ghz(1.0), 1.0};
  const CoreEpochResult r = core.run_epoch(10000000, opp, 0.040, 50.0);
  EXPECT_NEAR(r.busy_time, 0.010, 1e-9);
  EXPECT_NEAR(r.idle_time, 0.030, 1e-9);
}

TEST(Core, OverrunYieldsZeroIdle) {
  const PowerModel model;
  Core core(0, model);
  const Opp opp{0, common::mhz(200.0), 0.9};
  const CoreEpochResult r = core.run_epoch(100000000, opp, 0.040, 50.0);
  EXPECT_GT(r.busy_time, 0.040);
  EXPECT_DOUBLE_EQ(r.idle_time, 0.0);
}

TEST(Core, EnergyPositiveEvenWhenIdle) {
  const PowerModel model;
  Core core(0, model);
  const Opp opp{0, common::ghz(1.0), 1.0};
  const CoreEpochResult r = core.run_epoch(0, opp, 0.040, 50.0);
  EXPECT_DOUBLE_EQ(r.busy_time, 0.0);
  EXPECT_GT(r.energy, 0.0);  // idle + leakage power
}

TEST(Core, PmuAccumulatesAcrossEpochs) {
  const PowerModel model;
  Core core(0, model);
  const Opp opp{0, common::ghz(1.0), 1.0};
  (void)core.run_epoch(1000, opp, 0.040, 50.0);
  (void)core.run_epoch(2000, opp, 0.040, 50.0);
  EXPECT_EQ(core.pmu().snapshot().cycles, 3000u);
  EXPECT_GT(core.total_energy(), 0.0);
}

TEST(Core, ResetClearsAccounting) {
  const PowerModel model;
  Core core(0, model);
  const Opp opp{0, common::ghz(1.0), 1.0};
  (void)core.run_epoch(1000, opp, 0.040, 50.0);
  core.reset();
  EXPECT_EQ(core.pmu().snapshot().cycles, 0u);
  EXPECT_DOUBLE_EQ(core.total_energy(), 0.0);
}

TEST(Cluster, FrameTimeIsSlowetCore) {
  const OppTable t = OppTable::odroid_xu3_a15();
  Cluster c(t, quiet_params());
  // Core 2 gets double work: it defines the frame time.
  const auto opp = c.current_opp();
  const common::Cycles base = 10000000;
  const auto r = c.run_epoch({base, base, 2 * base, base}, 0.040);
  EXPECT_NEAR(r.frame_time, common::time_for(2 * base, opp.frequency), 1e-9);
}

TEST(Cluster, DeadlineDetection) {
  const OppTable t = OppTable::odroid_xu3_a15();
  Cluster c(t, quiet_params());
  const auto light = c.run_epoch({1000, 1000, 1000, 1000}, 0.040);
  EXPECT_TRUE(light.deadline_met);
  EXPECT_DOUBLE_EQ(light.window, 0.040);  // early finish pads to the period
  c.set_opp(0);
  const auto heavy = c.run_epoch({50000000, 0, 0, 0}, 0.040);
  EXPECT_FALSE(heavy.deadline_met);
  EXPECT_GT(heavy.window, 0.040);  // overrun extends the window
}

TEST(Cluster, DvfsStallChargedToNextEpoch) {
  const OppTable t = OppTable::odroid_xu3_a15();
  Cluster c(t, quiet_params());
  const double stall = c.set_opp(18);
  EXPECT_GT(stall, 0.0);
  const auto r = c.run_epoch({1000, 1000, 1000, 1000}, 0.040);
  EXPECT_DOUBLE_EQ(r.dvfs_stall, stall);
  const auto r2 = c.run_epoch({1000, 1000, 1000, 1000}, 0.040);
  EXPECT_DOUBLE_EQ(r2.dvfs_stall, 0.0);  // consumed
}

TEST(Cluster, EnergyGrowsWithFrequencyForFixedWindow) {
  const OppTable t = OppTable::odroid_xu3_a15();
  const std::vector<common::Cycles> work{5000000, 5000000, 5000000, 5000000};
  Cluster slow(t, quiet_params());
  slow.set_opp(2);
  Cluster fast(t, quiet_params());
  fast.set_opp(18);
  const auto rs = slow.run_epoch(work, 0.040);
  const auto rf = fast.run_epoch(work, 0.040);
  ASSERT_TRUE(rs.deadline_met);
  ASSERT_TRUE(rf.deadline_met);
  // Same work, same 40 ms window: the faster/higher-V run burns more energy
  // (race-to-idle does not pay off under quadratic voltage cost).
  EXPECT_GT(rf.energy, rs.energy);
}

TEST(Cluster, MissingWorkEntriesMeanIdleCores) {
  const OppTable t = OppTable::odroid_xu3_a15();
  Cluster c(t, quiet_params());
  const auto r = c.run_epoch({10000000}, 0.040);
  EXPECT_EQ(r.core_cycles.size(), 4u);
  EXPECT_EQ(r.core_cycles[1], 0u);
  EXPECT_DOUBLE_EQ(r.core_busy[3], 0.0);
}

TEST(Cluster, TemperatureRisesUnderLoad) {
  const OppTable t = OppTable::odroid_xu3_a15();
  ClusterParams p = quiet_params();
  p.thermal.t_init = 30.0;
  Cluster c(t, p);
  c.set_opp(18);
  double last = 30.0;
  for (int i = 0; i < 50; ++i) {
    const auto r = c.run_epoch({60000000, 60000000, 60000000, 60000000}, 0.040);
    last = r.temperature;
  }
  EXPECT_GT(last, 45.0);
}

TEST(Cluster, TotalsAccumulateAndReset) {
  const OppTable t = OppTable::odroid_xu3_a15();
  Cluster c(t, quiet_params());
  (void)c.run_epoch({1000000, 1000000, 1000000, 1000000}, 0.040);
  (void)c.run_epoch({1000000, 1000000, 1000000, 1000000}, 0.040);
  EXPECT_NEAR(c.total_time(), 0.080, 1e-9);
  EXPECT_GT(c.total_energy(), 0.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.total_time(), 0.0);
  EXPECT_DOUBLE_EQ(c.total_energy(), 0.0);
  EXPECT_EQ(c.current_opp_index(), quiet_params().initial_opp);
}

TEST(Cluster, AvgPowerConsistentWithEnergy) {
  const OppTable t = OppTable::odroid_xu3_a15();
  Cluster c(t, quiet_params());
  const auto r = c.run_epoch({20000000, 20000000, 20000000, 20000000}, 0.040);
  EXPECT_NEAR(r.avg_power * r.window, r.energy, 1e-9);
}

/// Property: across all OPPs, executing a feasible fixed workload to the
/// deadline consumes monotonically more energy at higher OPPs (idle-padded).
class ClusterOppSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ClusterOppSweep, FeasibleEpochAccountingInvariants) {
  const OppTable t = OppTable::odroid_xu3_a15();
  Cluster c(t, quiet_params());
  c.set_opp(GetParam());
  const auto r = c.run_epoch({4000000, 4000000, 4000000, 4000000}, 0.040);
  EXPECT_GT(r.energy, 0.0);
  EXPECT_GE(r.window, r.frame_time - 1e-12);
  EXPECT_EQ(r.core_cycles.size(), 4u);
  EXPECT_NEAR(r.avg_power * r.window, r.energy, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllOpps, ClusterOppSweep,
                         ::testing::Range(std::size_t{0}, std::size_t{19},
                                          std::size_t{3}));

}  // namespace
}  // namespace prime::hw
