/// \file test_ondemand.cpp
/// \brief Unit tests for the Linux ondemand governor reimplementation.
#include <gtest/gtest.h>

#include "gov/ondemand.hpp"

namespace prime::gov {
namespace {

DecisionContext make_ctx(const hw::OppTable& opps) {
  DecisionContext ctx;
  ctx.period = 0.040;
  ctx.cores = 4;
  ctx.opps = &opps;
  return ctx;
}

/// An observation where the busiest core was busy `load` of a 40 ms window
/// while running at OPP `opp_index`.
EpochObservation obs_with_load(const hw::OppTable& opps, std::size_t opp_index,
                               double load) {
  EpochObservation o;
  o.period = 0.040;
  o.window = 0.040;
  o.frame_time = load * 0.040;
  o.opp_index = opp_index;
  const common::Hertz f = opps.at(opp_index).frequency;
  o.core_cycles = {common::cycles_at(f, load * 0.040), 0, 0, 0};
  o.total_cycles = o.core_cycles[0];
  o.deadline_met = o.frame_time <= o.period;
  return o;
}

TEST(Ondemand, FirstDecisionStartsHigh) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  OndemandGovernor g;
  EXPECT_EQ(g.decide(make_ctx(opps), std::nullopt), 18u);
}

TEST(Ondemand, JumpsToMaxAboveThreshold) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  OndemandGovernor g;
  (void)g.decide(make_ctx(opps), std::nullopt);
  const auto next = g.decide(make_ctx(opps), obs_with_load(opps, 9, 0.97));
  EXPECT_EQ(next, 18u);
}

TEST(Ondemand, ScalesDownProportionally) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  OndemandGovernor g;
  (void)g.decide(make_ctx(opps), std::nullopt);
  // 30 % load at 2000 MHz -> busy_hz = 600 MHz -> target ~ 600/0.72 = 833 MHz
  // -> lowest OPP >= 833 = 900 MHz (index 7).
  const auto next = g.decide(make_ctx(opps), obs_with_load(opps, 18, 0.30));
  EXPECT_EQ(next, opps.lowest_at_least(common::mhz(600.0) / 0.72));
}

TEST(Ondemand, SteadyModerateLoadSettles) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  OndemandGovernor g;
  auto ctx = make_ctx(opps);
  std::size_t idx = g.decide(ctx, std::nullopt);
  // Feed a constant cycle demand; the governor should stop moving.
  const common::Cycles demand = 40000000;  // 1 GHz-ms scale work
  std::size_t prev = idx;
  int stable = 0;
  for (int i = 0; i < 30; ++i) {
    EpochObservation o;
    o.period = 0.040;
    o.opp_index = idx;
    const common::Hertz f = opps.at(idx).frequency;
    o.frame_time = common::time_for(demand, f);
    o.window = std::max(o.frame_time, o.period);
    o.core_cycles = {demand, 0, 0, 0};
    o.deadline_met = o.frame_time <= o.period;
    idx = g.decide(ctx, o);
    if (idx == prev) ++stable;
    prev = idx;
  }
  EXPECT_GT(stable, 20);
}

TEST(Ondemand, SamplingRateHoldsBetweenSamples) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  OndemandParams p;
  p.sampling_epochs = 3;
  OndemandGovernor g(p);
  auto ctx = make_ctx(opps);
  const std::size_t first = g.decide(ctx, std::nullopt);
  // Low load would normally trigger down-scaling, but two of the next three
  // decisions fall between samples and must hold.
  const auto o = obs_with_load(opps, first, 0.10);
  const std::size_t a = g.decide(ctx, o);
  const std::size_t b = g.decide(ctx, o);
  const std::size_t c = g.decide(ctx, o);
  EXPECT_EQ(a, first);
  EXPECT_EQ(b, first);
  EXPECT_NE(c, first);
}

TEST(Ondemand, ResetForgetsState) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  OndemandGovernor g;
  auto ctx = make_ctx(opps);
  (void)g.decide(ctx, std::nullopt);
  (void)g.decide(ctx, obs_with_load(opps, 18, 0.2));
  g.reset();
  EXPECT_EQ(g.decide(ctx, std::nullopt), 18u);
}

TEST(Ondemand, IgnoresDeadlinesByDesign) {
  // The paper's critique: ondemand is agnostic of performance requirements.
  // Same load at two different periods must give the same decision.
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  OndemandGovernor g1;
  OndemandGovernor g2;
  auto ctx1 = make_ctx(opps);
  auto ctx2 = make_ctx(opps);
  ctx2.period = 0.010;
  (void)g1.decide(ctx1, std::nullopt);
  (void)g2.decide(ctx2, std::nullopt);
  auto o = obs_with_load(opps, 18, 0.5);
  EXPECT_EQ(g1.decide(ctx1, o), g2.decide(ctx2, o));
}

}  // namespace
}  // namespace prime::gov
