/// \file test_dashboard.cpp
/// \brief Tests for the live dashboard telemetry sink: the mid-run and final
///        snapshot differentials against the aggregate sink, the epoch tail,
///        multi-domain OPP residency, the /window scroll-back endpoint, the
///        registry entry and the builder's port-collision validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/http.hpp"
#include "gov/simple.hpp"
#include "hw/platform.hpp"
#include "sim/bintrace.hpp"
#include "sim/builder.hpp"
#include "sim/dashboard.hpp"
#include "sim/experiment.hpp"
#include "sim/telemetry.hpp"
#include "wl/fft.hpp"

namespace prime::sim {
namespace {

wl::Application make_app(std::size_t frames, double fps = 30.0) {
  wl::WorkloadTrace trace =
      wl::FftTraceGenerator::paper_fft().generate(frames, 1);
  trace = trace.scaled_to_mean(0.45 * 4.0 * 2.0e9 / fps);
  return wl::Application("fft", std::move(trace), fps);
}

std::unique_ptr<hw::Platform> make_board(std::size_t clusters) {
  common::Config cfg;
  cfg.set_int("hw.clusters", static_cast<long long>(clusters));
  return hw::Platform::from_config(cfg);
}

std::string get_body(const DashboardSink& dash, const std::string& target) {
  const common::HttpResult result =
      common::http_get("127.0.0.1", dash.bound_port(), target);
  EXPECT_EQ(result.status, 200) << target << ": " << result.body;
  return result.body;
}

// --- The differential: dashboard snapshots vs the aggregate sink -------------

TEST(Dashboard, MidRunSnapshotMatchesAggregateSinkForEveryGovernor) {
  // The acceptance differential: for every registered governor, a snapshot
  // taken over HTTP mid-run carries byte-for-byte the aggregates an
  // AggregateSink holds at that instant — both fold through
  // RunResult::accumulate, and the JSON encoder is shared.
  for (const std::string& name : governor_names()) {
    auto platform = hw::Platform::odroid_xu3_a15();
    const wl::Application app = make_app(120);
    const auto governor = make_governor(name, 42);

    AggregateSink agg;
    DashboardSink dash(0, /*every=*/1, /*tail_n=*/8);
    std::size_t checked = 0;
    CallbackSink probe([&](const EpochRecord& record, gov::Governor&) {
      if (record.epoch != 60) return;
      const std::string body = get_body(dash, "/snapshot");
      const std::string want =
          "\"aggregates\":" + snapshot_aggregates_json(agg.result());
      EXPECT_NE(body.find(want), std::string::npos) << name << ":\n" << body;
      EXPECT_NE(body.find("\"state\":\"running\""), std::string::npos);
      ++checked;
    });
    RunOptions opt;
    // Order matters: the probe runs after both sinks saw the same epoch.
    opt.sinks = {&agg, &dash, &probe};
    const RunResult run = run_simulation(*platform, app, *governor, opt);

    ASSERT_EQ(checked, 1u) << name;
    // And the final snapshot equals the sealed result of the run itself.
    const std::string final_body = get_body(dash, "/snapshot");
    EXPECT_NE(
        final_body.find("\"aggregates\":" + snapshot_aggregates_json(run)),
        std::string::npos)
        << name;
    EXPECT_NE(final_body.find("\"state\":\"finished\""), std::string::npos);
  }
}

TEST(Dashboard, SnapshotCarriesRunIdentity) {
  auto platform = hw::Platform::odroid_xu3_a15();
  DashboardSink dash(0, 1);
  gov::PerformanceGovernor g;
  RunOptions opt;
  opt.sinks = {&dash};
  (void)run_simulation(*platform, make_app(50), g, opt);

  const std::string body = get_body(dash, "/snapshot");
  EXPECT_NE(body.find("\"governor\":\"performance\""), std::string::npos);
  EXPECT_NE(body.find("\"application\":\"fft\""), std::string::npos);
  EXPECT_NE(body.find("\"planned_frames\":50"), std::string::npos);
  EXPECT_NE(body.find("\"runs_completed\":1"), std::string::npos);
}

// --- The epoch tail ----------------------------------------------------------

TEST(Dashboard, TailHoldsTheLastRecordsBitForBit) {
  auto platform = hw::Platform::odroid_xu3_a15();
  TraceSink trace;
  DashboardSink dash(0, 1, /*tail_n=*/16);
  gov::PerformanceGovernor g;
  RunOptions opt;
  opt.sinks = {&trace, &dash};
  (void)run_simulation(*platform, make_app(100), g, opt);

  const std::string body = get_body(dash, "/snapshot");
  // The ring kept exactly the last 16 epochs; each serialises identically to
  // the trace sink's copy of the same record (shared encoder, shared bits).
  ASSERT_EQ(trace.records().size(), 100u);
  for (std::size_t i = 84; i < 100; ++i) {
    EXPECT_NE(body.find(epoch_record_json(trace.records()[i])),
              std::string::npos)
        << "epoch " << i;
  }
  // The evicted prefix is gone.
  EXPECT_EQ(body.find(epoch_record_json(trace.records()[83])),
            std::string::npos);
}

// --- OPP residency -----------------------------------------------------------

/// Extract the "opp_residency" array text from a snapshot body.
std::string residency_of(const std::string& body) {
  const auto begin = body.find("\"opp_residency\":");
  const auto end = body.find(",\"tail\"");
  EXPECT_NE(begin, std::string::npos);
  EXPECT_NE(end, std::string::npos);
  return body.substr(begin, end - begin);
}

/// Sum every integer in \p text (the residency rows are plain u64 arrays).
std::uint64_t sum_numbers(const std::string& text) {
  std::uint64_t sum = 0;
  std::size_t i = 0;
  while (i < text.size()) {
    if (std::isdigit(static_cast<unsigned char>(text[i]))) {
      std::uint64_t v = 0;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i]))) {
        v = v * 10 + static_cast<std::uint64_t>(text[i] - '0');
        ++i;
      }
      sum += v;
    } else {
      ++i;
    }
  }
  return sum;
}

TEST(Dashboard, ResidencyHasOneRowPerDomainSummingToEpochs) {
  for (const std::size_t clusters : {std::size_t{1}, std::size_t{2}}) {
    auto board = make_board(clusters);
    DashboardSink dash(0, 1);
    gov::PerformanceGovernor g;
    RunOptions opt;
    opt.sinks = {&dash};
    (void)run_simulation(*board, make_app(80), g, opt);

    const std::string rows = residency_of(get_body(dash, "/snapshot"));
    // Row separator appears exactly (domains - 1) times.
    std::size_t seps = 0;
    for (std::size_t p = rows.find("],["); p != std::string::npos;
         p = rows.find("],[", p + 1)) {
      ++seps;
    }
    EXPECT_EQ(seps, clusters - 1) << rows;
    // Every epoch lands in exactly one OPP bin per domain.
    EXPECT_EQ(sum_numbers(rows), 80u * clusters) << rows;
  }
}

// --- /window scroll-back -----------------------------------------------------

TEST(Dashboard, WindowServesRecordsBitIdenticalToTheReader) {
  const std::string path = testing::TempDir() + "dash-window.bt";
  auto platform = hw::Platform::odroid_xu3_a15();
  BinTraceSink bt(path);
  DashboardSink dash(0, 1);
  gov::PerformanceGovernor g;
  RunOptions opt;
  opt.sinks = {&bt, &dash};  // engine points /window at the bintrace path
  (void)run_simulation(*platform, make_app(40), g, opt);

  const std::string body = get_body(dash, "/window?from=10&count=3");
  EXPECT_NE(body.find("\"record_count\":40"), std::string::npos) << body;
  EXPECT_NE(body.find("\"sealed\":true"), std::string::npos);
  EXPECT_NE(body.find("\"from\":10"), std::string::npos);
  BinTraceReader reader(path);
  for (const std::size_t i : {10u, 11u, 12u}) {
    EXPECT_NE(body.find(epoch_record_json(reader.at(i))), std::string::npos)
        << "record " << i;
  }
  EXPECT_EQ(body.find(epoch_record_json(reader.at(13))), std::string::npos);

  // A window starting past the end clamps to empty, not an error.
  const std::string past = get_body(dash, "/window?from=100000&count=5");
  EXPECT_NE(past.find("\"records\":[]"), std::string::npos) << past;

  // Malformed parameters are the client's fault.
  const common::HttpResult bad = common::http_get(
      "127.0.0.1", dash.bound_port(), "/window?from=abc");
  EXPECT_EQ(bad.status, 400);
}

TEST(Dashboard, WindowWithoutATraceIs404) {
  auto platform = hw::Platform::odroid_xu3_a15();
  DashboardSink dash(0, 1);
  gov::PerformanceGovernor g;
  RunOptions opt;
  opt.sinks = {&dash};
  (void)run_simulation(*platform, make_app(30), g, opt);
  const common::HttpResult result =
      common::http_get("127.0.0.1", dash.bound_port(), "/window");
  EXPECT_EQ(result.status, 404);
}

TEST(Dashboard, UnknownPathIs404) {
  auto platform = hw::Platform::odroid_xu3_a15();
  DashboardSink dash(0, 1);
  gov::PerformanceGovernor g;
  RunOptions opt;
  opt.sinks = {&dash};
  (void)run_simulation(*platform, make_app(30), g, opt);
  EXPECT_EQ(
      common::http_get("127.0.0.1", dash.bound_port(), "/nonsense").status,
      404);
}

// --- /events -----------------------------------------------------------------

TEST(Dashboard, EventsStreamOpensWithTheCurrentSnapshot) {
  auto platform = hw::Platform::odroid_xu3_a15();
  DashboardSink dash(0, 1);
  gov::PerformanceGovernor g;
  RunOptions opt;
  opt.sinks = {&dash};
  const RunResult run = run_simulation(*platform, make_app(60), g, opt);

  std::string first;
  const int status = common::http_get_stream(
      "127.0.0.1", dash.bound_port(), "/events",
      [&](const std::string& line) {
        if (line.rfind("data: ", 0) != 0) return true;
        first = line.substr(6);
        return false;  // one event is enough, hang up
      });
  EXPECT_EQ(status, 200);
  EXPECT_NE(first.find("\"aggregates\":" + snapshot_aggregates_json(run)),
            std::string::npos);
}

TEST(Dashboard, IdleEventsStreamEmitsKeepAliveHeartbeats) {
  // Once a run finishes the snapshot version stops changing; the stream
  // must still emit SSE comment heartbeats so a dead peer fails the next
  // send and its connection thread exits instead of spinning forever.
  auto platform = hw::Platform::odroid_xu3_a15();
  DashboardSink dash(0, 1);
  gov::PerformanceGovernor g;
  RunOptions opt;
  opt.sinks = {&dash};
  (void)run_simulation(*platform, make_app(30), g, opt);

  bool got_heartbeat = false;
  const int status = common::http_get_stream(
      "127.0.0.1", dash.bound_port(), "/events",
      [&](const std::string& line) {
        if (line.rfind(':', 0) == 0) {
          got_heartbeat = true;
          return false;
        }
        return true;  // skip the opening snapshot and blank separators
      });
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(got_heartbeat);
}

// --- Registry and lazy-open contract -----------------------------------------

TEST(Dashboard, RegistrySpecDiagnostics) {
  const auto names = sink_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "dashboard"), names.end());

  auto sink = make_sink("dashboard(port=0,every=50,tail=8)");
  auto* dash = dynamic_cast<DashboardSink*>(sink.get());
  ASSERT_NE(dash, nullptr);
  // Lazy-open: constructing the sink must not bind a socket yet.
  EXPECT_EQ(dash->bound_port(), 0);

  // A port is mandatory, and must be a real port number.
  EXPECT_THROW((void)make_sink("dashboard"), std::invalid_argument);
  EXPECT_THROW((void)make_sink("dashboard(port=99999)"),
               std::invalid_argument);
  EXPECT_THROW((void)make_sink("dashboard(port=0,evry=5)"),
               common::UnknownKeyError);
}

// --- Builder integration -----------------------------------------------------

TEST(Dashboard, BuilderRejectsASharedPortAcrossConcurrentRuns) {
  ExperimentBuilder shared;
  shared.workload("fft").frames(20)
      .governors({"performance", "powersave"})
      .oracle_baseline(false)
      .dashboard("18080");
  try {
    (void)shared.run();
    FAIL() << "expected the port collision to be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("18080"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("{cell}"), std::string::npos);
  }
}

TEST(Dashboard, BuilderEphemeralPortsNeverCollide) {
  // port=0 binds a fresh ephemeral port per run, so "0" may repeat.
  ExperimentBuilder b;
  const SweepResult sweep = b.workload("fft").frames(20)
      .governors({"performance", "powersave"})
      .oracle_baseline(false)
      .dashboard("0")
      .run();
  ASSERT_EQ(sweep.results.size(), 2u);
  for (const auto& r : sweep.results) {
    auto* dash = r.sink<DashboardSink>();
    ASSERT_NE(dash, nullptr);
    EXPECT_NE(dash->bound_port(), 0);  // server up, run finished, sealed view
    const std::string body = get_body(*dash, "/snapshot");
    EXPECT_NE(
        body.find("\"aggregates\":" + snapshot_aggregates_json(r.run)),
        std::string::npos);
  }
}

TEST(Dashboard, BuilderCellPlaceholderKeysPortsPerCell) {
  // One governor across two (workload, fps) cells: "1917{cell}" expands to
  // distinct ports 19170 and 19171, passing validation and binding both.
  ExperimentBuilder b;
  const SweepResult sweep = b.workload("fft").frames(20)
      .governor("performance")
      .fps_set({25.0, 30.0})
      .oracle_baseline(false)
      .dashboard("1917{cell}")
      .run();
  ASSERT_EQ(sweep.results.size(), 2u);
  std::vector<std::uint16_t> ports;
  for (const auto& r : sweep.results) {
    auto* dash = r.sink<DashboardSink>();
    ASSERT_NE(dash, nullptr);
    ports.push_back(dash->bound_port());
  }
  std::sort(ports.begin(), ports.end());
  EXPECT_EQ(ports, (std::vector<std::uint16_t>{19170, 19171}));
}

}  // namespace
}  // namespace prime::sim
