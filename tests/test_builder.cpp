/// \file test_builder.cpp
/// \brief Unit tests for ExperimentBuilder and the multi-threaded sweep runner.
#include <gtest/gtest.h>

#include <filesystem>

#include "hw/platform.hpp"
#include "qlib/library.hpp"
#include "sim/builder.hpp"
#include "sim/report.hpp"

namespace prime::sim {
namespace {

ExperimentBuilder small_builder() {
  ExperimentBuilder b;
  b.workload("fft").fps(25.0).frames(80).governors({"performance", "powersave"});
  return b;
}

TEST(ExperimentBuilder, ScenariosFormTheFullMatrix) {
  ExperimentBuilder b;
  b.workloads({"fft", "h264"})
      .fps_set({25.0, 30.0})
      .governors({"performance", "ondemand"})
      .frames(50);
  const std::vector<Scenario> matrix = b.scenarios();
  ASSERT_EQ(matrix.size(), 8u);  // 2 workloads x 2 fps x 2 governors
  // Workload-major, then fps, then governor; cells number the (wl, fps) pairs.
  EXPECT_EQ(matrix[0].workload, "fft");
  EXPECT_EQ(matrix[0].fps, 25.0);
  EXPECT_EQ(matrix[0].governor, "performance");
  EXPECT_EQ(matrix[0].cell, 0u);
  EXPECT_EQ(matrix[1].governor, "ondemand");
  EXPECT_EQ(matrix[1].cell, 0u);
  EXPECT_EQ(matrix[2].fps, 30.0);
  EXPECT_EQ(matrix[2].cell, 1u);
  EXPECT_EQ(matrix[7].workload, "h264");
  EXPECT_EQ(matrix[7].fps, 30.0);
  EXPECT_EQ(matrix[7].governor, "ondemand");
  EXPECT_EQ(matrix[7].cell, 3u);
  // The resolved app spec carries the cell's workload and fps.
  EXPECT_EQ(matrix[7].app.workload, "h264");
  EXPECT_EQ(matrix[7].app.fps, 30.0);
  EXPECT_EQ(matrix[7].app.frames, 50u);
}

TEST(ExperimentBuilder, EmptyMatrixThrows) {
  EXPECT_THROW((void)ExperimentBuilder().workload("fft").run(),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentBuilder().governor("oracle").run(),
               std::invalid_argument);
}

TEST(ExperimentBuilder, RunProducesOneResultPerScenario) {
  ExperimentBuilder b;
  b.workloads({"fft", "flat(mean=1.5e8)"})
      .fps(25.0)
      .frames(60)
      .governors({"performance", "powersave"});
  const SweepResult sweep = b.run();
  ASSERT_EQ(sweep.results.size(), 4u);
  ASSERT_EQ(sweep.oracle_runs.size(), 2u);
  EXPECT_EQ(sweep.rows().size(), 4u);
  for (const auto& r : sweep.results) {
    EXPECT_EQ(r.run.epoch_count, 60u);
    EXPECT_GT(r.run.total_energy, 0.0);
    EXPECT_GT(r.row.normalized_energy, 0.0);
    ASSERT_NE(r.governor, nullptr);  // post-run introspection handle
  }
  // Performance burns more energy than powersave on the same cell.
  EXPECT_GT(sweep.results[0].run.total_energy,
            sweep.results[1].run.total_energy);
}

TEST(ExperimentBuilder, SweepIsDeterministicAcrossThreadCounts) {
  const SweepResult serial = small_builder().parallelism(1).run();
  const SweepResult threaded = small_builder().parallelism(4).run();
  ASSERT_EQ(serial.results.size(), threaded.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].scenario.governor,
              threaded.results[i].scenario.governor);
    EXPECT_DOUBLE_EQ(serial.results[i].run.total_energy,
                     threaded.results[i].run.total_energy);
  }
  ASSERT_EQ(serial.oracle_runs.size(), threaded.oracle_runs.size());
  EXPECT_DOUBLE_EQ(serial.oracle_runs[0].total_energy,
                   threaded.oracle_runs[0].total_energy);
}

TEST(ExperimentBuilder, CompareMatchesCompareGovernors) {
  const Comparison built = small_builder().compare();

  auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "fft";
  spec.fps = 25.0;
  spec.frames = 80;
  const wl::Application app = make_application(spec, *platform);
  const Comparison direct =
      compare_governors(*platform, app, {"performance", "powersave"});

  ASSERT_EQ(built.runs.size(), direct.runs.size());
  EXPECT_DOUBLE_EQ(built.oracle_run.total_energy,
                   direct.oracle_run.total_energy);
  for (std::size_t i = 0; i < built.runs.size(); ++i) {
    EXPECT_DOUBLE_EQ(built.runs[i].total_energy, direct.runs[i].total_energy);
  }
}

TEST(ExperimentBuilder, CompareRejectsMatrices) {
  ExperimentBuilder b;
  b.workloads({"fft", "h264"}).governor("performance");
  EXPECT_THROW((void)b.compare(), std::invalid_argument);
}

TEST(ExperimentBuilder, FindLocatesScenarios) {
  const SweepResult sweep = small_builder().run();
  const ScenarioResult* hit = sweep.find("powersave", "fft", 25.0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->scenario.governor, "powersave");
  EXPECT_EQ(sweep.find("powersave", "fft", 60.0), nullptr);
  EXPECT_EQ(sweep.find("nope", "fft", 25.0), nullptr);
}

TEST(ExperimentBuilder, CoresControlsThePlatform) {
  ExperimentBuilder b;
  b.cores(8).workload("fft").frames(40).governor("performance");
  const SweepResult sweep = b.run();
  ASSERT_EQ(sweep.results.size(), 1u);
  // 8 cores' worth of calibrated work executed without error.
  EXPECT_EQ(sweep.results[0].run.epoch_count, 40u);
}

TEST(ExperimentBuilder, SweepTableHasOneRowPerScenario) {
  const SweepResult sweep = small_builder().run();
  const TextTable t = make_sweep_table("sweep", sweep);
  EXPECT_EQ(t.rows.size(), sweep.results.size());
  ASSERT_FALSE(t.rows.empty());
  EXPECT_EQ(t.rows[0][0], "performance");
  EXPECT_EQ(t.rows[0][1], "fft");
}

TEST(ExperimentBuilder, OracleBaselineCanBeDisabled) {
  const SweepResult sweep = small_builder().oracle_baseline(false).run();
  ASSERT_EQ(sweep.results.size(), 2u);
  EXPECT_TRUE(sweep.oracle_runs.empty());
  for (const auto& r : sweep.results) {
    EXPECT_EQ(r.run.epoch_count, 80u);
    EXPECT_GT(r.run.total_energy, 0.0);       // absolute metrics intact
    EXPECT_EQ(r.row.normalized_energy, 0.0);  // no baseline to normalise by
  }
}

TEST(ExperimentBuilder, TelemetrySpecsAttachFreshSinksPerScenario) {
  ExperimentBuilder b;
  b.workload("fft").fps(25.0).frames(60).governors({"performance", "powersave"})
      .telemetry({"trace", "tail(n=16)"});
  const SweepResult sweep = b.run();
  ASSERT_EQ(sweep.results.size(), 2u);
  for (const auto& r : sweep.results) {
    ASSERT_EQ(r.telemetry.size(), 2u);
    const auto* records = r.trace();
    ASSERT_NE(records, nullptr);
    EXPECT_EQ(records->size(), 60u);
    // The trace reproduces the run's aggregates exactly.
    RunResult recomputed;
    for (const auto& rec : *records) recomputed.accumulate(rec);
    EXPECT_DOUBLE_EQ(recomputed.total_energy, r.run.total_energy);
    // The tail window holds the last n=16 records.
    auto* tail = r.sink<TailSink>();
    ASSERT_NE(tail, nullptr);
    ASSERT_EQ(tail->buffer().size(), 16u);
    EXPECT_EQ(tail->records().back().epoch, 59u);
    EXPECT_EQ(tail->records().front().epoch, 44u);
  }
  // The Oracle baseline runs carry the same telemetry set.
  ASSERT_EQ(sweep.oracle_telemetry.size(), 1u);
  const auto* oracle_trace = find_sink<TraceSink>(sweep.oracle_telemetry[0]);
  ASSERT_NE(oracle_trace, nullptr);
  EXPECT_EQ(oracle_trace->records().size(), 60u);
}

TEST(ExperimentBuilder, TelemetryTyposGetDidYouMeanErrors) {
  ExperimentBuilder b;
  b.workload("fft").frames(20).governor("performance");
  // Unknown sink name.
  EXPECT_THROW((void)b.telemetry("tracee").run(), common::UnknownNameError);
  // Known sink, typo'd key.
  ExperimentBuilder b2;
  b2.workload("fft").frames(20).governor("performance");
  try {
    (void)b2.telemetry("csv(pth=/tmp/x.csv)").run();
    FAIL() << "expected UnknownKeyError";
  } catch (const common::UnknownKeyError& e) {
    EXPECT_NE(std::string(e.what()).find("path"), std::string::npos);
  }
}

TEST(ExperimentBuilder, CsvTargetsMustBeUniquePerConcurrentRun) {
  // Two scenarios (plus the Oracle baseline) into one file — or stdout —
  // would interleave; the builder rejects the sweep up front.
  ExperimentBuilder shared_file;
  shared_file.workload("fft").frames(20).governors(
      {"performance", "powersave"});
  EXPECT_THROW(
      (void)shared_file.telemetry("csv(path=/tmp/one-file.csv)").run(),
      std::invalid_argument);
  ExperimentBuilder to_stdout;
  to_stdout.workload("fft").frames(20).governors({"performance", "powersave"});
  EXPECT_THROW((void)to_stdout.telemetry("csv").run(), std::invalid_argument);

  // Even a single-run sweep rejects two specs opening the same target.
  ExperimentBuilder twin_specs;
  twin_specs.workload("fft").frames(20).governor("performance")
      .oracle_baseline(false)
      .telemetry({"csv(path=/tmp/twin.csv)", "csv(path=/tmp/twin.csv)"});
  EXPECT_THROW((void)twin_specs.run(), std::invalid_argument);

  // Placeholders that key every run uniquely are accepted.
  ExperimentBuilder unique;
  unique.workload("fft").frames(20).governors({"performance", "powersave"});
  const SweepResult sweep =
      unique
          .telemetry(
              "csv(path=" + testing::TempDir() + "sweep-{governor}.csv)")
          .run();
  ASSERT_EQ(sweep.results.size(), 2u);
  for (const auto& r : sweep.results) {
    auto* csv = r.sink<CsvSink>();
    ASSERT_NE(csv, nullptr);
    EXPECT_EQ(csv->rows_written(), 20u);
  }
}

TEST(ExperimentBuilder, CompareRejectsTelemetry) {
  ExperimentBuilder b = small_builder();
  b.telemetry("trace");
  EXPECT_THROW((void)b.compare(), std::invalid_argument);
}

TEST(ExperimentBuilder, ParameterisedGovernorSpecsRunInSweeps) {
  ExperimentBuilder b;
  b.workload("fft").frames(60).governors(
      {"rtm(policy=upd)", "rtm(policy=epd)"});
  const SweepResult sweep = b.run();
  ASSERT_EQ(sweep.results.size(), 2u);
  // Different exploration policies, same seed: the runs must diverge.
  EXPECT_NE(sweep.results[0].run.total_energy,
            sweep.results[1].run.total_energy);
}

TEST(ExperimentBuilder, StreamingSweepMatchesMaterialisedSweep) {
  // The stream= spec flag swaps the trace vector for a lazy FrameSource;
  // the sweep's numbers must not move at all (frame-for-frame equivalence,
  // engine run length from the builder's frames()).
  ExperimentBuilder materialised;
  materialised.workloads({"fft", "h264"})
      .fps(25.0)
      .frames(120)
      .governors({"performance", "ondemand"});
  ExperimentBuilder streaming;
  streaming.workloads({"fft(stream=true)", "h264(stream=true)"})
      .fps(25.0)
      .frames(120)
      .governors({"performance", "ondemand"});
  const SweepResult a = materialised.run();
  const SweepResult b = streaming.run();
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].run.epoch_count, b.results[i].run.epoch_count);
    EXPECT_DOUBLE_EQ(a.results[i].run.total_energy,
                     b.results[i].run.total_energy);
    EXPECT_DOUBLE_EQ(a.results[i].row.normalized_energy,
                     b.results[i].row.normalized_energy);
  }
  ASSERT_EQ(a.oracle_runs.size(), b.oracle_runs.size());
  for (std::size_t c = 0; c < a.oracle_runs.size(); ++c) {
    EXPECT_DOUBLE_EQ(a.oracle_runs[c].total_energy,
                     b.oracle_runs[c].total_energy);
  }
}

TEST(ExperimentBuilder, PublishThenWarmStartRoundTrips) {
  const std::string dir = testing::TempDir() + "builder-qlib";
  std::filesystem::remove_all(dir);

  // Train: every scenario publishes its final governor state; the Oracle
  // baseline deliberately does not.
  ExperimentBuilder train;
  train.workload("fft").fps(25.0).frames(80).governors({"rtm", "performance"});
  (void)train.publish_policies(dir).run();
  const qlib::PolicyLibrary lib(dir);
  EXPECT_EQ(lib.list().size(), 2u);

  // Warm: the same matrix warm-starts each scenario from its exact key.
  ExperimentBuilder warm;
  warm.workload("fft").fps(25.0).frames(80).governors({"rtm", "performance"});
  const SweepResult sweep = warm.warm_start(dir).run();
  EXPECT_EQ(sweep.results.size(), 2u);

  // A scenario with no published entry fails closed, naming the key.
  ExperimentBuilder missing;
  missing.workload("h264").fps(25.0).frames(80).governor("rtm");
  EXPECT_THROW((void)missing.warm_start(dir).run(), qlib::QlibError);
}

TEST(ExperimentBuilder, StreamSetterAppliesToEveryWorkload) {
  ExperimentBuilder b;
  b.workload("fft").frames(50).governor("performance").stream(true);
  const SweepResult sweep = b.run();
  ASSERT_EQ(sweep.results.size(), 1u);
  EXPECT_EQ(sweep.results[0].run.epoch_count, 50u);
  // compare() takes the same path.
  const Comparison cmp = b.compare();
  EXPECT_EQ(cmp.runs[0].epoch_count, 50u);
}

}  // namespace
}  // namespace prime::sim
