/// \file test_builder.cpp
/// \brief Unit tests for ExperimentBuilder and the multi-threaded sweep runner.
#include <gtest/gtest.h>

#include "hw/platform.hpp"
#include "sim/builder.hpp"
#include "sim/report.hpp"

namespace prime::sim {
namespace {

ExperimentBuilder small_builder() {
  ExperimentBuilder b;
  b.workload("fft").fps(25.0).frames(80).governors({"performance", "powersave"});
  return b;
}

TEST(ExperimentBuilder, ScenariosFormTheFullMatrix) {
  ExperimentBuilder b;
  b.workloads({"fft", "h264"})
      .fps_set({25.0, 30.0})
      .governors({"performance", "ondemand"})
      .frames(50);
  const std::vector<Scenario> matrix = b.scenarios();
  ASSERT_EQ(matrix.size(), 8u);  // 2 workloads x 2 fps x 2 governors
  // Workload-major, then fps, then governor; cells number the (wl, fps) pairs.
  EXPECT_EQ(matrix[0].workload, "fft");
  EXPECT_EQ(matrix[0].fps, 25.0);
  EXPECT_EQ(matrix[0].governor, "performance");
  EXPECT_EQ(matrix[0].cell, 0u);
  EXPECT_EQ(matrix[1].governor, "ondemand");
  EXPECT_EQ(matrix[1].cell, 0u);
  EXPECT_EQ(matrix[2].fps, 30.0);
  EXPECT_EQ(matrix[2].cell, 1u);
  EXPECT_EQ(matrix[7].workload, "h264");
  EXPECT_EQ(matrix[7].fps, 30.0);
  EXPECT_EQ(matrix[7].governor, "ondemand");
  EXPECT_EQ(matrix[7].cell, 3u);
  // The resolved app spec carries the cell's workload and fps.
  EXPECT_EQ(matrix[7].app.workload, "h264");
  EXPECT_EQ(matrix[7].app.fps, 30.0);
  EXPECT_EQ(matrix[7].app.frames, 50u);
}

TEST(ExperimentBuilder, EmptyMatrixThrows) {
  EXPECT_THROW((void)ExperimentBuilder().workload("fft").run(),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentBuilder().governor("oracle").run(),
               std::invalid_argument);
}

TEST(ExperimentBuilder, RunProducesOneResultPerScenario) {
  ExperimentBuilder b;
  b.workloads({"fft", "flat(mean=1.5e8)"})
      .fps(25.0)
      .frames(60)
      .governors({"performance", "powersave"});
  const SweepResult sweep = b.run();
  ASSERT_EQ(sweep.results.size(), 4u);
  ASSERT_EQ(sweep.oracle_runs.size(), 2u);
  EXPECT_EQ(sweep.rows().size(), 4u);
  for (const auto& r : sweep.results) {
    EXPECT_EQ(r.run.epochs.size(), 60u);
    EXPECT_GT(r.run.total_energy, 0.0);
    EXPECT_GT(r.row.normalized_energy, 0.0);
    ASSERT_NE(r.governor, nullptr);  // post-run introspection handle
  }
  // Performance burns more energy than powersave on the same cell.
  EXPECT_GT(sweep.results[0].run.total_energy,
            sweep.results[1].run.total_energy);
}

TEST(ExperimentBuilder, SweepIsDeterministicAcrossThreadCounts) {
  const SweepResult serial = small_builder().parallelism(1).run();
  const SweepResult threaded = small_builder().parallelism(4).run();
  ASSERT_EQ(serial.results.size(), threaded.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].scenario.governor,
              threaded.results[i].scenario.governor);
    EXPECT_DOUBLE_EQ(serial.results[i].run.total_energy,
                     threaded.results[i].run.total_energy);
  }
  ASSERT_EQ(serial.oracle_runs.size(), threaded.oracle_runs.size());
  EXPECT_DOUBLE_EQ(serial.oracle_runs[0].total_energy,
                   threaded.oracle_runs[0].total_energy);
}

TEST(ExperimentBuilder, CompareMatchesCompareGovernors) {
  const Comparison built = small_builder().compare();

  auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "fft";
  spec.fps = 25.0;
  spec.frames = 80;
  const wl::Application app = make_application(spec, *platform);
  const Comparison direct =
      compare_governors(*platform, app, {"performance", "powersave"});

  ASSERT_EQ(built.runs.size(), direct.runs.size());
  EXPECT_DOUBLE_EQ(built.oracle_run.total_energy,
                   direct.oracle_run.total_energy);
  for (std::size_t i = 0; i < built.runs.size(); ++i) {
    EXPECT_DOUBLE_EQ(built.runs[i].total_energy, direct.runs[i].total_energy);
  }
}

TEST(ExperimentBuilder, CompareRejectsMatrices) {
  ExperimentBuilder b;
  b.workloads({"fft", "h264"}).governor("performance");
  EXPECT_THROW((void)b.compare(), std::invalid_argument);
}

TEST(ExperimentBuilder, FindLocatesScenarios) {
  const SweepResult sweep = small_builder().run();
  const ScenarioResult* hit = sweep.find("powersave", "fft", 25.0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->scenario.governor, "powersave");
  EXPECT_EQ(sweep.find("powersave", "fft", 60.0), nullptr);
  EXPECT_EQ(sweep.find("nope", "fft", 25.0), nullptr);
}

TEST(ExperimentBuilder, CoresControlsThePlatform) {
  ExperimentBuilder b;
  b.cores(8).workload("fft").frames(40).governor("performance");
  const SweepResult sweep = b.run();
  ASSERT_EQ(sweep.results.size(), 1u);
  // 8 cores' worth of calibrated work executed without error.
  EXPECT_EQ(sweep.results[0].run.epochs.size(), 40u);
}

TEST(ExperimentBuilder, SweepTableHasOneRowPerScenario) {
  const SweepResult sweep = small_builder().run();
  const TextTable t = make_sweep_table("sweep", sweep);
  EXPECT_EQ(t.rows.size(), sweep.results.size());
  ASSERT_FALSE(t.rows.empty());
  EXPECT_EQ(t.rows[0][0], "performance");
  EXPECT_EQ(t.rows[0][1], "fft");
}

TEST(ExperimentBuilder, OracleBaselineCanBeDisabled) {
  const SweepResult sweep = small_builder().oracle_baseline(false).run();
  ASSERT_EQ(sweep.results.size(), 2u);
  EXPECT_TRUE(sweep.oracle_runs.empty());
  for (const auto& r : sweep.results) {
    EXPECT_EQ(r.run.epochs.size(), 80u);
    EXPECT_GT(r.run.total_energy, 0.0);       // absolute metrics intact
    EXPECT_EQ(r.row.normalized_energy, 0.0);  // no baseline to normalise by
  }
}

TEST(ExperimentBuilder, ParameterisedGovernorSpecsRunInSweeps) {
  ExperimentBuilder b;
  b.workload("fft").frames(60).governors(
      {"rtm(policy=upd)", "rtm(policy=epd)"});
  const SweepResult sweep = b.run();
  ASSERT_EQ(sweep.results.size(), 2u);
  // Different exploration policies, same seed: the runs must diverge.
  EXPECT_NE(sweep.results[0].run.total_energy,
            sweep.results[1].run.total_energy);
}

}  // namespace
}  // namespace prime::sim
