/// \file test_power_model.cpp
/// \brief Unit tests for the analytical CMOS power model.
#include <gtest/gtest.h>

#include "hw/opp.hpp"
#include "hw/power_model.hpp"

namespace prime::hw {
namespace {

TEST(PowerModel, ActivePowerIsCeffV2F) {
  PowerModelParams p;
  p.ceff = 1.0e-9;
  const PowerModel m(p);
  const Opp opp{0, common::ghz(1.0), 1.0};
  EXPECT_NEAR(m.active_power(opp), 1.0, 1e-12);  // 1e-9 * 1 * 1e9
}

TEST(PowerModel, PowerScalesQuadraticallyWithVoltage) {
  const PowerModel m;
  const Opp lo{0, common::ghz(1.0), 1.0};
  const Opp hi{0, common::ghz(1.0), 2.0};
  EXPECT_NEAR(m.active_power(hi) / m.active_power(lo), 4.0, 1e-9);
}

TEST(PowerModel, CubicReductionWithCombinedVfScaling) {
  // The paper's motivation: halving f and V together cuts dynamic power 8x.
  const PowerModel m;
  const Opp full{0, common::ghz(2.0), 1.2};
  const Opp half{0, common::ghz(1.0), 0.6};
  EXPECT_NEAR(m.active_power(full) / m.active_power(half), 8.0, 1e-9);
}

TEST(PowerModel, IdleIsConfiguredFractionOfActive) {
  PowerModelParams p;
  p.idle_fraction = 0.1;
  const PowerModel m(p);
  const Opp opp{0, common::ghz(1.5), 1.1};
  EXPECT_NEAR(m.idle_power(opp), 0.1 * m.active_power(opp), 1e-12);
}

TEST(PowerModel, LeakageGrowsWithVoltageAndTemperature) {
  const PowerModel m;
  EXPECT_GT(m.leakage_power(1.3, 60.0), m.leakage_power(0.9, 60.0));
  EXPECT_GT(m.leakage_power(1.1, 85.0), m.leakage_power(1.1, 45.0));
}

TEST(PowerModel, LeakageNeverNegative) {
  const PowerModel m;
  EXPECT_GT(m.leakage_power(0.9, -100.0), 0.0);  // temp factor clamped
}

TEST(PowerModel, ActiveEnergyIndependentOfFrequency) {
  // E = Ceff V^2 cycles: running the same cycles faster at the same voltage
  // costs the same switching energy (time shrinks as power grows).
  const PowerModel m;
  const Opp slow{0, common::mhz(500.0), 1.0};
  const Opp fast{0, common::ghz(2.0), 1.0};
  EXPECT_NEAR(m.active_energy(slow, 1000000), m.active_energy(fast, 1000000),
              1e-15);
}

TEST(PowerModel, DefaultCalibrationIsXu3Like) {
  // Fully loaded 4-core cluster at the 2 GHz / 1.3625 V point should draw a
  // single-digit-watt dynamic figure, as measured on real XU3 boards.
  const PowerModel m;
  const Opp top{18, common::ghz(2.0), 1.3625};
  const double cluster_dynamic = 4.0 * m.active_power(top);
  EXPECT_GT(cluster_dynamic, 5.0);
  EXPECT_LT(cluster_dynamic, 10.0);
}

TEST(PowerModel, UncorePowerPositiveAndSmallerThanCores) {
  const PowerModel m;
  const Opp top{18, common::ghz(2.0), 1.3625};
  EXPECT_GT(m.uncore_power(top), 0.0);
  EXPECT_LT(m.uncore_power(top), m.active_power(top));
}

/// Property: active power is strictly increasing along the XU3 OPP table.
TEST(PowerModel, MonotoneAlongOppTable) {
  const PowerModel m;
  const OppTable t = OppTable::odroid_xu3_a15();
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GT(m.active_power(t.at(i)), m.active_power(t.at(i - 1)));
  }
}

/// Property: energy to run a fixed workload is minimised at the lowest OPP —
/// the premise behind the Oracle's lowest-feasible-frequency rule.
TEST(PowerModel, FixedWorkEnergyMonotoneInOppIndex) {
  const PowerModel m;
  const OppTable t = OppTable::odroid_xu3_a15();
  const common::Cycles work = 100000000;
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GE(m.active_energy(t.at(i), work), m.active_energy(t.at(i - 1), work));
  }
}

}  // namespace
}  // namespace prime::hw
