/// \file test_thermal.cpp
/// \brief Unit tests for the RC thermal model.
#include <cmath>
#include <gtest/gtest.h>

#include "hw/thermal_model.hpp"

namespace prime::hw {
namespace {

TEST(ThermalModel, StartsAtInitialTemperature) {
  ThermalModelParams p;
  p.t_init = 42.0;
  const ThermalModel m(p);
  EXPECT_DOUBLE_EQ(m.temperature(), 42.0);
}

TEST(ThermalModel, SteadyStateFormula) {
  ThermalModelParams p;
  p.ambient = 25.0;
  p.r_th = 5.0;
  const ThermalModel m(p);
  EXPECT_DOUBLE_EQ(m.steady_state(4.0), 45.0);
  EXPECT_DOUBLE_EQ(m.steady_state(0.0), 25.0);
}

TEST(ThermalModel, ConvergesToSteadyState) {
  ThermalModelParams p;
  p.ambient = 25.0;
  p.r_th = 5.0;
  p.tau = 2.0;
  p.t_init = 25.0;
  ThermalModel m(p);
  for (int i = 0; i < 200; ++i) m.step(6.0, 0.1);  // 20 s >> tau
  EXPECT_NEAR(m.temperature(), 55.0, 0.2);
}

TEST(ThermalModel, CoolsWhenPowerRemoved) {
  ThermalModelParams p;
  p.t_init = 80.0;
  ThermalModel m(p);
  m.step(0.0, 10.0);
  EXPECT_LT(m.temperature(), 80.0);
  EXPECT_GT(m.temperature(), p.ambient - 0.01);
}

TEST(ThermalModel, ExactExponentialStepIsStableForLargeDt) {
  ThermalModelParams p;
  p.t_init = 30.0;
  ThermalModel m(p);
  m.step(5.0, 1000.0);  // dt >> tau: must land exactly on steady state
  EXPECT_NEAR(m.temperature(), m.steady_state(5.0), 1e-6);
}

TEST(ThermalModel, OneTauReaches63Percent) {
  ThermalModelParams p;
  p.ambient = 0.0;
  p.r_th = 1.0;
  p.tau = 2.0;
  p.t_init = 0.0;
  ThermalModel m(p);
  m.step(100.0, 2.0);  // exactly one time constant
  EXPECT_NEAR(m.temperature(), 100.0 * (1.0 - std::exp(-1.0)), 1e-9);
}

TEST(ThermalModel, ZeroOrNegativeDtIsNoOp) {
  ThermalModel m;
  const double before = m.temperature();
  m.step(100.0, 0.0);
  m.step(100.0, -1.0);
  EXPECT_DOUBLE_EQ(m.temperature(), before);
}

TEST(ThermalModel, TripDetection) {
  ThermalModelParams p;
  p.t_max = 50.0;
  p.t_init = 49.0;
  p.r_th = 10.0;
  ThermalModel m(p);
  EXPECT_FALSE(m.over_trip());
  m.step(50.0, 100.0);
  EXPECT_TRUE(m.over_trip());
}

TEST(ThermalModel, ResetRestoresInit) {
  ThermalModelParams p;
  p.t_init = 40.0;
  ThermalModel m(p);
  m.step(10.0, 5.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.temperature(), 40.0);
}

/// Property: temperature stays bounded between ambient and steady state when
/// starting from ambient under constant power.
class ThermalSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThermalSweep, BoundedTrajectory) {
  ThermalModelParams p;
  p.t_init = p.ambient;
  ThermalModel m(p);
  const double power = GetParam();
  const double target = m.steady_state(power);
  for (int i = 0; i < 100; ++i) {
    m.step(power, 0.05);
    EXPECT_GE(m.temperature(), p.ambient - 1e-9);
    EXPECT_LE(m.temperature(), target + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Powers, ThermalSweep,
                         ::testing::Values(0.5, 2.0, 6.0, 10.0));

}  // namespace
}  // namespace prime::hw
