/// \file test_policy.cpp
/// \brief Unit tests for EPD/UPD exploration (eq. 2) and the eq. (6) schedule.
#include <gtest/gtest.h>

#include <cmath>

#include <numeric>

#include "rtm/policy.hpp"

namespace prime::rtm {
namespace {

TEST(EpdPolicy, UniformAtZeroSlack) {
  const EpdPolicy epd;
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  const auto p = epd.probabilities(opps, 0.0);
  ASSERT_EQ(p.size(), opps.size());
  for (const double v : p) EXPECT_NEAR(v, 1.0 / 19.0, 1e-12);
}

TEST(EpdPolicy, PositiveSlackFavoursSlowOpps) {
  const EpdPolicy epd;
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  const auto p = epd.probabilities(opps, 0.4);
  EXPECT_GT(p.front(), p.back());
  // Monotone decreasing in frequency.
  for (std::size_t i = 1; i < p.size(); ++i) EXPECT_LT(p[i], p[i - 1]);
}

TEST(EpdPolicy, NegativeSlackFavoursFastOpps) {
  const EpdPolicy epd;
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  const auto p = epd.probabilities(opps, -0.4);
  EXPECT_GT(p.back(), p.front());
}

TEST(EpdPolicy, ProbabilitiesNormalised) {
  const EpdPolicy epd(5.0);
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  for (double slack : {-0.5, -0.1, 0.0, 0.2, 0.5}) {
    const auto p = epd.probabilities(opps, slack);
    EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-9);
  }
}

TEST(EpdPolicy, LargerBetaConcentratesHarder) {
  const EpdPolicy mild(1.0);
  const EpdPolicy sharp(8.0);
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  const auto pm = mild.probabilities(opps, 0.4);
  const auto ps = sharp.probabilities(opps, 0.4);
  EXPECT_GT(ps.front(), pm.front());
}

TEST(EpdPolicy, SamplingFollowsDistribution) {
  const EpdPolicy epd;
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  common::Rng rng(3);
  const int n = 20000;
  std::vector<int> counts(opps.size(), 0);
  for (int i = 0; i < n; ++i) ++counts[epd.sample(opps, 0.4, rng)];
  // Slow half should receive clearly more samples than the fast half.
  int slow = 0;
  int fast = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    (i < counts.size() / 2 ? slow : fast) += counts[i];
  }
  EXPECT_GT(slow, fast * 3 / 2);
}

TEST(UpdPolicy, UniformRegardlessOfSlack) {
  const UpdPolicy upd;
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  for (double slack : {-0.5, 0.0, 0.5}) {
    const auto p = upd.probabilities(opps, slack);
    for (const double v : p) EXPECT_NEAR(v, 1.0 / 19.0, 1e-12);
  }
}

TEST(MakePolicy, Factory) {
  EXPECT_EQ(make_policy("epd")->name(), "epd");
  EXPECT_EQ(make_policy("upd")->name(), "upd");
  EXPECT_THROW(make_policy("thompson"), std::invalid_argument);
}

TEST(EpsilonSchedule, RejectsBadAlpha) {
  EpsilonSchedule::Params p;
  p.alpha = 1.0;
  EXPECT_THROW(EpsilonSchedule{p}, std::invalid_argument);
  p.alpha = -0.1;
  EXPECT_THROW(EpsilonSchedule{p}, std::invalid_argument);
}

TEST(EpsilonSchedule, Eq6DecayAcceleratesWithEpoch) {
  EpsilonSchedule s;  // paper eq. (6) by default
  const double e0 = s.value();
  s.advance();
  const double drop1 = e0 - s.value();
  for (int i = 0; i < 98; ++i) s.advance();
  const double before = s.value();
  s.advance();
  const double drop100 = before - s.value();
  EXPECT_GT(drop100, drop1);  // super-exponential collapse
}

TEST(EpsilonSchedule, StaysHighEarlyThenCollapses) {
  EpsilonSchedule s;
  for (int i = 0; i < 40; ++i) s.advance();
  EXPECT_GT(s.value(), 0.5);  // still mostly exploring at epoch 40
  for (int i = 0; i < 200; ++i) s.advance();
  EXPECT_TRUE(s.converged());
}

TEST(EpsilonSchedule, RewardBoostAcceleratesConvergence) {
  EpsilonSchedule plain;
  EpsilonSchedule boosted;
  for (int i = 0; i < 500; ++i) {
    plain.advance(0.0);
    boosted.advance(1.0);
  }
  EXPECT_TRUE(plain.converged());
  EXPECT_TRUE(boosted.converged());
  EXPECT_LT(boosted.convergence_epoch(), plain.convergence_epoch());
}

TEST(EpsilonSchedule, GeometricModeIsConstantRate) {
  EpsilonSchedule::Params p;
  p.decay = EpsilonDecay::kGeometric;
  p.alpha = 0.99;
  EpsilonSchedule s(p);
  const double r1 = [&] {
    const double before = s.value();
    s.advance();
    return s.value() / before;
  }();
  const double r2 = [&] {
    const double before = s.value();
    s.advance();
    return s.value() / before;
  }();
  EXPECT_NEAR(r1, r2, 1e-12);
  EXPECT_NEAR(r1, std::exp(-0.01), 1e-12);
}

TEST(EpsilonSchedule, FloorIsSticky) {
  EpsilonSchedule s;
  for (int i = 0; i < 1000; ++i) s.advance();
  EXPECT_DOUBLE_EQ(s.value(), s.params().epsilon_min);
  const std::size_t conv = s.convergence_epoch();
  s.advance();
  EXPECT_EQ(s.convergence_epoch(), conv);  // first crossing is recorded once
}

TEST(EpsilonSchedule, ShouldExploreMatchesEpsilon) {
  EpsilonSchedule::Params p;
  p.epsilon0 = 0.25;
  p.alpha = 0.999999;  // effectively frozen
  EpsilonSchedule s(p);
  common::Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (s.should_explore(rng)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(EpsilonSchedule, ResetRestores) {
  EpsilonSchedule s;
  for (int i = 0; i < 300; ++i) s.advance();
  s.reset();
  EXPECT_DOUBLE_EQ(s.value(), s.params().epsilon0);
  EXPECT_EQ(s.epoch(), 0u);
  EXPECT_EQ(s.convergence_epoch(), 0u);
}

}  // namespace
}  // namespace prime::rtm
