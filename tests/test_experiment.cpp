/// \file test_experiment.cpp
/// \brief Unit tests for experiment assembly (applications, governors).
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace prime::sim {
namespace {

TEST(MakeApplication, CalibratesToTargetUtilisation) {
  const auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "fft";
  spec.fps = 25.0;
  spec.frames = 500;
  spec.target_utilisation = 0.5;
  const wl::Application app = make_application(spec, *platform);
  const double capacity = 4.0 * 2.0e9 * 0.040;  // cores * fmax * Tref
  EXPECT_NEAR(app.trace().mean_cycles() / (0.5 * capacity), 1.0, 0.02);
}

TEST(MakeApplication, ZeroUtilisationSkipsCalibration) {
  const auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "fft";
  spec.target_utilisation = 0.0;
  spec.frames = 100;
  const wl::Application app = make_application(spec, *platform);
  EXPECT_NEAR(app.trace().mean_cycles(), 90.0e6, 9.0e6);  // generator's level
}

TEST(MakeApplication, DeterministicForSeed) {
  const auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "h264";
  spec.frames = 100;
  spec.seed = 7;
  const wl::Application a = make_application(spec, *platform);
  const wl::Application b = make_application(spec, *platform);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.frame_cycles(i), b.frame_cycles(i));
  }
}

TEST(MakeApplication, StreamFlagBuildsStreamingApplication) {
  const auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "h264";
  spec.frames = 200;
  spec.stream = true;
  const wl::Application app = make_application(spec, *platform);
  EXPECT_TRUE(app.streaming());
  EXPECT_GT(app.frame_cycles(0), 0u);
}

TEST(MakeApplication, StreamSpecKeyOverridesField) {
  const auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.frames = 100;
  // The workload factory never sees the stream= key (it would reject it as
  // a typo); the experiment layer consumes it.
  spec.workload = "h264(stream=true)";
  EXPECT_TRUE(make_application(spec, *platform).streaming());
  spec.workload = "h264(stream=false)";
  spec.stream = true;  // per-workload key wins over the builder-level field
  EXPECT_FALSE(make_application(spec, *platform).streaming());
  // Bare boolean-flag form and parameterised specs work too.
  spec.stream = false;
  spec.workload = "flat(mean=2e8,cv=0.1,stream)";
  EXPECT_TRUE(make_application(spec, *platform).streaming());
}

TEST(MakeApplication, StreamedDemandsMatchMaterialisedCalibration) {
  // The calibrated streaming application must reproduce the materialised
  // trace frame for frame: same calibration window, same scale, same
  // round-to-nearest.
  const auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "h264";
  spec.fps = 25.0;
  spec.frames = 400;
  spec.seed = 13;
  spec.target_utilisation = 0.45;
  const wl::Application materialised = make_application(spec, *platform);
  spec.stream = true;
  const wl::Application streamed = make_application(spec, *platform);
  ASSERT_TRUE(streamed.streaming());
  for (std::size_t i = 0; i < spec.frames; ++i) {
    EXPECT_EQ(streamed.frame_cycles(i), materialised.frame_cycles(i))
        << "frame " << i;
  }
  EXPECT_EQ(streamed.mem_fraction(), materialised.mem_fraction());
}

TEST(CompareGovernors, StreamingAppWithMaxFramesMatchesMaterialised) {
  auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "fft";
  spec.frames = 120;
  const wl::Application materialised = make_application(spec, *platform);
  spec.stream = true;
  const wl::Application streamed = make_application(spec, *platform);
  const Comparison a =
      compare_governors(*platform, materialised, {"performance"});
  const Comparison b = compare_governors(*platform, streamed, {"performance"},
                                         0x271828, spec.frames);
  EXPECT_DOUBLE_EQ(a.runs[0].total_energy, b.runs[0].total_energy);
  EXPECT_DOUBLE_EQ(a.oracle_run.total_energy, b.oracle_run.total_energy);
}

TEST(MakeGovernor, AllNamesConstruct) {
  for (const auto& name : governor_names()) {
    const auto g = make_governor(name);
    ASSERT_NE(g, nullptr) << name;
    EXPECT_FALSE(g->name().empty()) << name;
  }
}

TEST(MakeGovernor, UnknownThrows) {
  EXPECT_THROW(make_governor("no-such-governor"), std::invalid_argument);
}

TEST(CompareGovernors, ProducesNormalisedRows) {
  auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "fft";
  spec.frames = 150;
  const wl::Application app = make_application(spec, *platform);
  const Comparison cmp =
      compare_governors(*platform, app, {"performance", "powersave"});
  ASSERT_EQ(cmp.rows.size(), 2u);
  ASSERT_EQ(cmp.runs.size(), 2u);
  EXPECT_EQ(cmp.oracle_run.governor, "oracle");
  // Performance wastes energy vs oracle; powersave misses en masse.
  EXPECT_GT(cmp.rows[0].normalized_energy, 1.0);
  EXPECT_GT(cmp.rows[1].normalized_performance, 1.0);
}

TEST(CompareGovernors, PlatformResetBetweenRuns) {
  auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "fft";
  spec.frames = 100;
  const wl::Application app = make_application(spec, *platform);
  const Comparison a = compare_governors(*platform, app, {"performance"});
  const Comparison b = compare_governors(*platform, app, {"performance"});
  EXPECT_DOUBLE_EQ(a.runs[0].total_energy, b.runs[0].total_energy);
  EXPECT_DOUBLE_EQ(a.oracle_run.total_energy, b.oracle_run.total_energy);
}

}  // namespace
}  // namespace prime::sim
