/// \file test_stats.cpp
/// \brief Unit tests for streaming statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/serial.hpp"
#include "common/stats.hpp"

namespace prime::common {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(10.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, RejectsInvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(50.0);   // clamps to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, PercentileOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.percentile(50.0), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(90.0), 90.0, 1.5);
  EXPECT_NEAR(h.percentile(0.0), 0.0, 1.5);
}

TEST(Histogram, PercentileEmptyReturnsLo) {
  Histogram h(5.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 5.0);
}

// Regression: p0 used to report lo_ unconditionally (target 0 matched the
// first bin even when empty) instead of the lowest populated bin.
TEST(Histogram, PercentileZeroSkipsEmptyLeadingBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(7.5);  // bin 7: everything below is empty
  h.add(7.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 8.0);
}

TEST(Histogram, PercentileAllMassInTopBin) {
  Histogram h(0.0, 10.0, 10);
  h.add(50.0);  // clamps into bin 9
  h.add(60.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 9.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 9.5);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);
}

TEST(Histogram, PercentileSingleBin) {
  Histogram h(2.0, 4.0, 1);
  h.add(3.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 4.0);
}

TEST(MovingAverage, WindowEviction) {
  MovingAverage m(3);
  m.add(1.0);
  m.add(2.0);
  m.add(3.0);
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
  EXPECT_TRUE(m.full());
  m.add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
}

TEST(MovingAverage, PartialWindow) {
  MovingAverage m(10);
  m.add(4.0);
  m.add(6.0);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_FALSE(m.full());
}

TEST(MovingAverage, ZeroCapacityClampedToOne) {
  MovingAverage m(0);
  EXPECT_EQ(m.capacity(), 1u);
  m.add(7.0);
  m.add(9.0);
  EXPECT_DOUBLE_EQ(m.mean(), 9.0);
}

TEST(MovingAverage, ResetEmpties) {
  MovingAverage m(4);
  m.add(1.0);
  m.reset();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

TEST(PercentileOf, InterpolatesSortedSamples) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile_of(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 25.0), 2.0);
}

TEST(PercentileOf, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile_of({}, 50.0), 0.0);
}

TEST(Mape, BasicRelativeError) {
  EXPECT_NEAR(mape({100.0, 200.0}, {110.0, 180.0}), (0.10 + 0.10) / 2.0, 1e-12);
}

TEST(Mape, SkipsZeroReference) {
  EXPECT_NEAR(mape({0.0, 100.0}, {5.0, 90.0}), 0.10, 1e-12);
}

TEST(Mape, EmptyIsZero) { EXPECT_DOUBLE_EQ(mape({}, {}), 0.0); }

/// Property: variance is never negative across random streams.
class StatsPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsPropertySweep, VarianceNonNegative) {
  Rng r(GetParam());
  RunningStats s;
  for (int i = 0; i < 500; ++i) s.add(r.uniform(-100.0, 100.0));
  EXPECT_GE(s.variance(), 0.0);
  EXPECT_GE(s.max(), s.min());
  EXPECT_GE(s.mean(), s.min());
  EXPECT_LE(s.mean(), s.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertySweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

// --- Histogram merge ---------------------------------------------------------

TEST(HistogramMerge, EqualsSequentialFill) {
  Rng rng(11);
  Histogram all(0.0, 10.0, 64);
  Histogram a(0.0, 10.0, 64);
  Histogram b(0.0, 10.0, 64);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-1.0, 11.0);  // exercise clamping too
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  ASSERT_EQ(a.count(), all.count());
  for (std::size_t i = 0; i < all.bins(); ++i) {
    EXPECT_EQ(a.bin_count(i), all.bin_count(i)) << "bin " << i;
  }
  EXPECT_DOUBLE_EQ(a.percentile(95.0), all.percentile(95.0));
}

TEST(HistogramMerge, OrderInvariant) {
  Rng rng(12);
  Histogram ab(2.0, 4.0, 16);
  Histogram ba(2.0, 4.0, 16);
  Histogram a(2.0, 4.0, 16);
  Histogram b(2.0, 4.0, 16);
  for (int i = 0; i < 200; ++i) {
    (i % 3 == 0 ? a : b).add(rng.uniform(2.0, 4.0));
  }
  ab.merge(a);
  ab.merge(b);
  ba.merge(b);
  ba.merge(a);
  for (std::size_t i = 0; i < ab.bins(); ++i) {
    EXPECT_EQ(ab.bin_count(i), ba.bin_count(i));
  }
}

TEST(HistogramMerge, OperatorFormAccumulates) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  a.add(0.1);
  b.add(0.9);
  a += b;
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.bin_count(0), 1u);
  EXPECT_EQ(a.bin_count(3), 1u);
}

TEST(HistogramMerge, IncompatibleGeometryThrows) {
  Histogram base(0.0, 1.0, 10);
  EXPECT_FALSE(base.bin_compatible(Histogram(0.0, 1.0, 11)));
  EXPECT_FALSE(base.bin_compatible(Histogram(0.0, 2.0, 10)));
  EXPECT_FALSE(base.bin_compatible(Histogram(-1.0, 1.0, 10)));
  EXPECT_TRUE(base.bin_compatible(Histogram(0.0, 1.0, 10)));
  Histogram other(0.0, 2.0, 10);
  EXPECT_THROW(base.merge(other), std::invalid_argument);
  EXPECT_THROW(base += Histogram(0.0, 1.0, 11), std::invalid_argument);
}

TEST(HistogramSerial, RoundTripsBitExact) {
  Histogram h(-1.5, 2.5, 7);
  for (int i = 0; i < 50; ++i) h.add(-2.0 + 0.1 * i);
  std::stringstream buf;
  StateWriter w(buf);
  h.save_state(w);
  Histogram restored(0.0, 1.0, 1);
  StateReader r(buf);
  restored.load_state(r);
  EXPECT_TRUE(h.bin_compatible(restored));
  ASSERT_EQ(restored.count(), h.count());
  for (std::size_t i = 0; i < h.bins(); ++i) {
    EXPECT_EQ(restored.bin_count(i), h.bin_count(i));
  }
  EXPECT_DOUBLE_EQ(restored.percentile(50.0), h.percentile(50.0));
}

TEST(HistogramSerial, CorruptTotalRejected) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.5);
  std::stringstream buf;
  StateWriter w(buf);
  h.save_state(w);
  std::string bytes = buf.str();
  // The trailing u64 is the total; flip a bit so it disagrees with the bins.
  bytes[bytes.size() - 8] ^= 1;
  std::stringstream bad(bytes);
  StateReader r(bad);
  Histogram target(0.0, 1.0, 1);
  EXPECT_THROW(target.load_state(r), SerialError);
}

// --- ExactSum ----------------------------------------------------------------

TEST(ExactSum, ExactForGridValues) {
  // Values on the 2^-50 grid accumulate with zero rounding.
  ExactSum s;
  EXPECT_TRUE(s.zero());
  s.add(0.5);
  s.add(0.25);
  s.add(-0.125);
  EXPECT_DOUBLE_EQ(s.value(), 0.625);
  EXPECT_FALSE(s.zero());
}

TEST(ExactSum, MergeIsAssociativeAndOrderInvariantOnRandomDoubles) {
  Rng rng(13);
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.uniform(-1e6, 1e6));

  ExactSum sequential;
  for (const double v : values) sequential.add(v);

  // Three different groupings/orders over the same multiset.
  ExactSum a, b, c;
  for (int i = 0; i < 300; ++i) (i % 3 == 0 ? a : (i % 3 == 1 ? b : c))
      .add(values[static_cast<std::size_t>(i)]);
  ExactSum left;
  left += a;
  left += b;
  left += c;
  ExactSum right;
  right += c;
  right += b;
  right += a;
  EXPECT_TRUE(left == sequential);
  EXPECT_TRUE(right == sequential);
  EXPECT_EQ(left.value(), right.value());
}

TEST(ExactSum, QuantizationIsDeterministic) {
  // Two accumulators fed the same value always agree bit-for-bit, even off
  // the grid — the quantisation is a pure function of the input.
  ExactSum a, b;
  a.add(0.1);
  b.add(0.1);
  EXPECT_TRUE(a == b);
  // And the grid resolution is ~9e-16: a tiny value rounds to zero.
  ExactSum tiny;
  tiny.add(1e-20);
  EXPECT_TRUE(tiny.zero());
}

TEST(ExactSum, RejectsNonFiniteAndOverflowingValues) {
  ExactSum s;
  EXPECT_THROW(s.add(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(s.add(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(s.add(1e300), std::invalid_argument);
}

TEST(ExactSum, SerialRoundTripsBitExact) {
  ExactSum s;
  s.add(3.14159);
  s.add(-123.456);
  std::stringstream buf;
  StateWriter w(buf);
  s.save_state(w);
  ExactSum restored;
  StateReader r(buf);
  restored.load_state(r);
  EXPECT_TRUE(restored == s);
  EXPECT_EQ(restored.value(), s.value());
}

// --- percentiles_of ----------------------------------------------------------

TEST(PercentilesOf, MatchesRepeatedPercentileOf) {
  Rng rng(14);
  std::vector<double> samples;
  for (int i = 0; i < 777; ++i) samples.push_back(rng.uniform(-5.0, 5.0));
  const std::vector<double> ps = {0.0, 25.0, 50.0, 95.0, 99.0, 100.0};
  const std::vector<double> batch = percentiles_of(samples, ps);
  ASSERT_EQ(batch.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], percentile_of(samples, ps[i])) << "p" << ps[i];
  }
}

TEST(PercentilesOf, EmptyInputYieldsZeros) {
  const std::vector<double> out = percentiles_of({}, {50.0, 95.0});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

}  // namespace
}  // namespace prime::common
