/// \file test_stats.cpp
/// \brief Unit tests for streaming statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace prime::common {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(10.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, RejectsInvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(50.0);   // clamps to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, PercentileOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.percentile(50.0), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(90.0), 90.0, 1.5);
  EXPECT_NEAR(h.percentile(0.0), 0.0, 1.5);
}

TEST(Histogram, PercentileEmptyReturnsLo) {
  Histogram h(5.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 5.0);
}

TEST(MovingAverage, WindowEviction) {
  MovingAverage m(3);
  m.add(1.0);
  m.add(2.0);
  m.add(3.0);
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
  EXPECT_TRUE(m.full());
  m.add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
}

TEST(MovingAverage, PartialWindow) {
  MovingAverage m(10);
  m.add(4.0);
  m.add(6.0);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_FALSE(m.full());
}

TEST(MovingAverage, ZeroCapacityClampedToOne) {
  MovingAverage m(0);
  EXPECT_EQ(m.capacity(), 1u);
  m.add(7.0);
  m.add(9.0);
  EXPECT_DOUBLE_EQ(m.mean(), 9.0);
}

TEST(MovingAverage, ResetEmpties) {
  MovingAverage m(4);
  m.add(1.0);
  m.reset();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

TEST(PercentileOf, InterpolatesSortedSamples) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile_of(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile_of(v, 25.0), 2.0);
}

TEST(PercentileOf, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile_of({}, 50.0), 0.0);
}

TEST(Mape, BasicRelativeError) {
  EXPECT_NEAR(mape({100.0, 200.0}, {110.0, 180.0}), (0.10 + 0.10) / 2.0, 1e-12);
}

TEST(Mape, SkipsZeroReference) {
  EXPECT_NEAR(mape({0.0, 100.0}, {5.0, 90.0}), 0.10, 1e-12);
}

TEST(Mape, EmptyIsZero) { EXPECT_DOUBLE_EQ(mape({}, {}), 0.0); }

/// Property: variance is never negative across random streams.
class StatsPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsPropertySweep, VarianceNonNegative) {
  Rng r(GetParam());
  RunningStats s;
  for (int i = 0; i < 500; ++i) s.add(r.uniform(-100.0, 100.0));
  EXPECT_GE(s.variance(), 0.0);
  EXPECT_GE(s.max(), s.min());
  EXPECT_GE(s.mean(), s.min());
  EXPECT_LE(s.mean(), s.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertySweep,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

}  // namespace
}  // namespace prime::common
