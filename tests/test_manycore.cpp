/// \file test_manycore.cpp
/// \brief Unit tests for the many-core RTM (Section II-D, eq. 7).
#include <gtest/gtest.h>

#include "rtm/manycore.hpp"

namespace prime::rtm {
namespace {

gov::DecisionContext make_ctx(const hw::OppTable& opps, std::size_t epoch,
                              std::size_t cores = 4) {
  gov::DecisionContext ctx;
  ctx.epoch = epoch;
  ctx.period = 0.040;
  ctx.cores = cores;
  ctx.opps = &opps;
  return ctx;
}

gov::EpochObservation make_obs(std::size_t epoch, std::size_t opp_index,
                               std::vector<common::Cycles> cores) {
  gov::EpochObservation o;
  o.epoch = epoch;
  o.period = 0.040;
  o.frame_time = 0.030;
  o.window = 0.040;
  o.core_cycles = std::move(cores);
  o.total_cycles = 0;
  for (const auto c : o.core_cycles) o.total_cycles += c;
  o.opp_index = opp_index;
  o.deadline_met = true;
  return o;
}

TEST(ManycoreRtm, MaintainsOnePredictorPerCore) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ManycoreRtmGovernor g;
  std::optional<gov::EpochObservation> obs;
  std::size_t idx = g.decide(make_ctx(opps, 0), obs);
  obs = make_obs(0, idx, {10000000, 20000000, 30000000, 40000000});
  (void)g.decide(make_ctx(opps, 1), obs);
  ASSERT_EQ(g.core_predictors().size(), 4u);
  EXPECT_EQ(g.core_predictors()[0].prediction(), 10000000u);
  EXPECT_EQ(g.core_predictors()[3].prediction(), 40000000u);
}

TEST(ManycoreRtm, RoundRobinLearnerCore) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ManycoreRtmGovernor g;
  std::optional<gov::EpochObservation> obs;
  for (std::size_t i = 0; i < 8; ++i) {
    const auto idx = g.decide(make_ctx(opps, i), obs);
    obs = make_obs(i, idx, {10000000, 10000000, 10000000, 10000000});
    if (i > 0) {
      EXPECT_EQ(g.learner_core(), i % 4) << "epoch " << i;
    }
  }
}

TEST(ManycoreRtm, SharedTableSingleUpdatePerEpoch) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ManycoreRtmGovernor g;
  std::optional<gov::EpochObservation> obs;
  for (std::size_t i = 0; i < 12; ++i) {
    const auto idx = g.decide(make_ctx(opps, i), obs);
    obs = make_obs(i, idx, {10000000, 10000000, 10000000, 10000000});
  }
  // One shared-table update per epoch (not per core): epochs - 1.
  EXPECT_EQ(g.q_table()->total_updates(), 11u);
}

TEST(ManycoreRtm, OverheadMatchesSingleUpdate) {
  ManycoreRtmGovernor g;
  const OverheadModel m;
  // The paper's low-overhead claim: many-core control still costs one update.
  EXPECT_NEAR(g.epoch_overhead(), m.epoch_overhead(1), 1e-12);
}

TEST(ManycoreRtm, NormalizedModeUsesEq7Share) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ManycoreRtmParams p;
  p.mode = WorkloadStateMode::kNormalized;
  ManycoreRtmGovernor g(p);
  std::optional<gov::EpochObservation> obs;
  std::size_t idx = g.decide(make_ctx(opps, 0), obs);
  // Perfectly balanced: every core's share is 1/4 regardless of magnitude.
  obs = make_obs(0, idx, {50000000, 50000000, 50000000, 50000000});
  (void)g.decide(make_ctx(opps, 1), obs);
  obs = make_obs(1, idx, {90000000, 90000000, 90000000, 90000000});
  (void)g.decide(make_ctx(opps, 2), obs);
  // No crash, predictors track per-core magnitudes.
  EXPECT_GT(g.core_predictors()[0].prediction(), 50000000u);
}

TEST(ManycoreRtm, DeterministicForSeed) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ManycoreRtmParams p;
  p.base.seed = 31337;
  ManycoreRtmGovernor a(p);
  ManycoreRtmGovernor b(p);
  std::optional<gov::EpochObservation> oa;
  std::optional<gov::EpochObservation> ob;
  for (std::size_t i = 0; i < 60; ++i) {
    const auto ia = a.decide(make_ctx(opps, i), oa);
    const auto ib = b.decide(make_ctx(opps, i), ob);
    ASSERT_EQ(ia, ib);
    oa = make_obs(i, ia, {30000000, 31000000, 29000000, 30000000});
    ob = make_obs(i, ib, {30000000, 31000000, 29000000, 30000000});
  }
}

TEST(ManycoreRtm, ResetClearsPredictors) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ManycoreRtmGovernor g;
  std::optional<gov::EpochObservation> obs;
  std::size_t idx = g.decide(make_ctx(opps, 0), obs);
  obs = make_obs(0, idx, {10000000, 10000000, 10000000, 10000000});
  (void)g.decide(make_ctx(opps, 1), obs);
  g.reset();
  EXPECT_TRUE(g.core_predictors().empty());
  EXPECT_EQ(g.learner_core(), 0u);
}

TEST(ManycoreRtm, AdaptsToDifferentCoreCounts) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ManycoreRtmGovernor g;
  std::optional<gov::EpochObservation> obs;
  std::size_t idx = g.decide(make_ctx(opps, 0, 2), obs);
  obs = make_obs(0, idx, {10000000, 10000000});
  (void)g.decide(make_ctx(opps, 1, 2), obs);
  EXPECT_EQ(g.core_predictors().size(), 2u);
}

TEST(ManycoreRtm, NameDistinguishesManycore) {
  ManycoreRtmGovernor g;
  EXPECT_EQ(g.name(), "rtm-manycore");
}

}  // namespace
}  // namespace prime::rtm
