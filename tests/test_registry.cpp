/// \file test_registry.cpp
/// \brief Unit tests for the spec parser and the self-registering registries
///        (governors, workloads, rewards, exploration policies).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/registry.hpp"
#include "common/spec.hpp"
#include "common/strings.hpp"
#include "gov/registry.hpp"
#include "gov/thermal_cap.hpp"
#include "hw/platform.hpp"
#include "rtm/policy.hpp"
#include "rtm/reward.hpp"
#include "rtm/rtm_governor.hpp"
#include "sim/builder.hpp"
#include "sim/experiment.hpp"
#include "sim/telemetry.hpp"
#include "wl/registry.hpp"
#include "wl/suites.hpp"

namespace prime {
namespace {

using common::Spec;

// --- Spec parsing ------------------------------------------------------------

TEST(Spec, BareName) {
  const Spec s = Spec::parse("ondemand");
  EXPECT_EQ(s.name(), "ondemand");
  EXPECT_EQ(s.args().size(), 0u);
}

TEST(Spec, KeyValueArguments) {
  const Spec s = Spec::parse("rtm(policy=upd,reward=target-slack,alpha=0.2)");
  EXPECT_EQ(s.name(), "rtm");
  EXPECT_EQ(s.get_string("policy", ""), "upd");
  EXPECT_EQ(s.get_string("reward", ""), "target-slack");
  EXPECT_DOUBLE_EQ(s.get_double("alpha", 0.0), 0.2);
}

TEST(Spec, NestedSpecValuesStayWhole) {
  const Spec s = Spec::parse("rtm-thermal(inner=rtm(policy=upd,alpha=0.3),trip=80)");
  EXPECT_EQ(s.name(), "rtm-thermal");
  EXPECT_EQ(s.get_string("inner", ""), "rtm(policy=upd,alpha=0.3)");
  EXPECT_DOUBLE_EQ(s.get_double("trip", 0.0), 80.0);

  const Spec inner = Spec::parse(s.get_string("inner", ""));
  EXPECT_EQ(inner.name(), "rtm");
  EXPECT_EQ(inner.get_string("policy", ""), "upd");
}

TEST(Spec, WhitespaceAndEmptyParens) {
  const Spec s = Spec::parse("  rtm ( alpha = 0.5 , policy = upd ) ");
  EXPECT_EQ(s.name(), "rtm");
  EXPECT_DOUBLE_EQ(s.get_double("alpha", 0.0), 0.5);
  EXPECT_EQ(s.get_string("policy", ""), "upd");
  EXPECT_EQ(Spec::parse("rtm()").name(), "rtm");
}

TEST(Spec, UnparsableValuesThrowInsteadOfFallingBack) {
  const Spec s = Spec::parse("rtm(alpha=x.3,levels=7.5,flag=maybe,ok=0.8)");
  EXPECT_THROW((void)s.get_double("alpha", 0.25), std::invalid_argument);
  EXPECT_THROW((void)s.get_int("levels", 5), std::invalid_argument);
  EXPECT_THROW((void)s.get_bool("flag", false), std::invalid_argument);
  EXPECT_DOUBLE_EQ(s.get_double("ok", 0.0), 0.8);
  EXPECT_DOUBLE_EQ(s.get_double("absent", 1.5), 1.5);  // fallback still works
  // Through the registry: a value typo stops the experiment.
  EXPECT_THROW((void)sim::make_governor("rtm(alpha=x.3)"),
               std::invalid_argument);
}

TEST(Spec, BareFlagBecomesTrue) {
  const Spec s = Spec::parse("thing(verbose,level=2)");
  EXPECT_TRUE(s.get_bool("verbose", false));
  EXPECT_EQ(s.get_int("level", 0), 2);
}

TEST(Spec, MalformedThrows) {
  EXPECT_THROW(Spec::parse(""), std::invalid_argument);
  EXPECT_THROW(Spec::parse("   "), std::invalid_argument);
  EXPECT_THROW(Spec::parse("(a=1)"), std::invalid_argument);
  EXPECT_THROW(Spec::parse("name(a=1"), std::invalid_argument);
  EXPECT_THROW(Spec::parse("name a=1)"), std::invalid_argument);
  EXPECT_THROW(Spec::parse("name(a=1)x"), std::invalid_argument);
  EXPECT_THROW(Spec::parse("name(a=1,)"), std::invalid_argument);
  EXPECT_THROW(Spec::parse("a=1"), std::invalid_argument);
}

TEST(Spec, ListSplittingIgnoresCommasInsideParens) {
  const auto parts = common::split_outside_parens(
      "ondemand,rtm(policy=upd,alpha=0.3),thermal-cap(inner=rtm(levels=7))",
      ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "rtm(policy=upd,alpha=0.3)");
  EXPECT_EQ(parts[2], "thermal-cap(inner=rtm(levels=7))");
}

TEST(Spec, ToStringRoundTrips) {
  const Spec s = Spec::parse("rtm(policy=upd,alpha=0.2)");
  const Spec again = Spec::parse(s.to_string());
  EXPECT_EQ(again.name(), "rtm");
  EXPECT_EQ(again.get_string("policy", ""), "upd");
}

// --- Governor registry -------------------------------------------------------

TEST(GovernorRegistry, EveryRegisteredNameRoundTripsAndConstructs) {
  const auto names = sim::governor_names();
  ASSERT_FALSE(names.empty());
  for (const auto& name : names) {
    EXPECT_TRUE(gov::governor_registry().contains(name)) << name;
    const auto g = sim::make_governor(name);
    ASSERT_NE(g, nullptr) << name;
    EXPECT_FALSE(g->name().empty()) << name;
  }
}

TEST(GovernorRegistry, KnownNamesArePresent) {
  const auto names = sim::governor_names();
  for (const char* expected :
       {"performance", "powersave", "ondemand", "conservative", "schedutil",
        "pid", "oracle", "mcdvfs", "shen-rl", "rtm", "rtm-upd", "rtm-manycore",
        "rtm-manycore-normalized", "rtm-thermal", "thermal-cap"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(GovernorRegistry, UnknownNameListsRegisteredAndSuggests) {
  try {
    (void)sim::make_governor("rtm-manycoer");
    FAIL() << "expected UnknownNameError";
  } catch (const common::UnknownNameError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("Did you mean 'rtm-manycore'?"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ondemand"), std::string::npos) << msg;
  }
  // Still catchable as std::invalid_argument (backwards compatibility).
  EXPECT_THROW((void)sim::make_governor("nope"), std::invalid_argument);
}

TEST(GovernorRegistry, SpecParametersReachTheGovernor) {
  const auto g = sim::make_governor("rtm(policy=upd,alpha=0.2,levels=7)");
  const auto& rtm = dynamic_cast<const rtm::RtmGovernor&>(*g);
  EXPECT_EQ(rtm.params().policy, "upd");
  EXPECT_DOUBLE_EQ(rtm.params().learning_rate, 0.2);
  EXPECT_EQ(rtm.params().discretizer.workload_levels, 7u);
  EXPECT_EQ(rtm.params().discretizer.slack_levels, 7u);
}

TEST(GovernorRegistry, SpecSeedOverridesArgumentSeed) {
  const auto g = sim::make_governor("rtm(seed=123)", 999);
  EXPECT_EQ(dynamic_cast<const rtm::RtmGovernor&>(*g).params().seed, 123u);
  const auto h = sim::make_governor("rtm", 999);
  EXPECT_EQ(dynamic_cast<const rtm::RtmGovernor&>(*h).params().seed, 999u);
}

TEST(GovernorRegistry, TypoedKeysAreRejectedWithSuggestions) {
  try {
    (void)sim::make_governor("rtm-manycore(gama=0.5)");
    FAIL() << "expected UnknownKeyError";
  } catch (const common::UnknownKeyError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown key 'gama'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Did you mean 'gamma'?"), std::string::npos) << msg;
  }
  // Governors that take no keys reject any argument.
  EXPECT_THROW((void)sim::make_governor("performance(turbo=1)"),
               std::invalid_argument);
  // Valid keys still pass.
  EXPECT_NO_THROW((void)sim::make_governor("rtm-manycore(gamma=0.5)"));
}

TEST(GovernorRegistry, SpecSeedReachesThermalCapInner) {
  const auto g = sim::make_governor("rtm-thermal(inner=rtm,seed=123)", 999);
  auto& cap = dynamic_cast<gov::ThermalCapGovernor&>(*g);
  EXPECT_EQ(dynamic_cast<const rtm::RtmGovernor&>(cap.inner()).params().seed,
            123u);
}

TEST(GovernorRegistry, ComposedSpecsNest) {
  const auto g = sim::make_governor("thermal-cap(inner=rtm(policy=upd),trip=80)");
  auto& cap = dynamic_cast<gov::ThermalCapGovernor&>(*g);
  const auto& inner = dynamic_cast<const rtm::RtmGovernor&>(cap.inner());
  EXPECT_EQ(inner.params().policy, "upd");
}

TEST(GovernorRegistry, EveryGovernorIsDeterministicForAFixedSeed) {
  // Two independently constructed instances of the same spec must make
  // identical decisions across 100 epochs of the same application.
  auto platform = hw::Platform::odroid_xu3_a15();
  sim::ExperimentSpec spec;
  spec.workload = "fft";
  spec.frames = 100;
  const wl::Application app = sim::make_application(spec, *platform);

  for (const auto& name : sim::governor_names()) {
    const auto a = sim::make_governor(name, 0xF00D);
    const auto b = sim::make_governor(name, 0xF00D);
    sim::TraceSink ta;
    sim::TraceSink tb;
    sim::RunOptions oa;
    oa.sinks = {&ta};
    sim::RunOptions ob;
    ob.sinks = {&tb};
    (void)sim::run_simulation(*platform, app, *a, oa);
    (void)sim::run_simulation(*platform, app, *b, ob);
    ASSERT_EQ(ta.records().size(), tb.records().size()) << name;
    for (std::size_t i = 0; i < ta.records().size(); ++i) {
      ASSERT_EQ(ta.records()[i].opp_index, tb.records()[i].opp_index)
          << name << " diverges at epoch " << i;
    }
  }
}

// --- Workload registry -------------------------------------------------------

TEST(WorkloadRegistry, EveryRegisteredNameConstructsAndGenerates) {
  for (const auto& name : wl::all_workload_names()) {
    const auto g = wl::workload_registry().create(name);
    ASSERT_NE(g, nullptr) << name;
    EXPECT_EQ(g->generate(20, 1).size(), 20u) << name;
  }
}

TEST(WorkloadRegistry, ParameterisedSpecsWork) {
  const auto g = wl::make_workload("flat(mean=2e8,cv=0.02)");
  const wl::WorkloadTrace t = g->generate(500, 3);
  EXPECT_NEAR(t.mean_cycles() / 2.0e8, 1.0, 0.05);
}

TEST(WorkloadRegistry, UnknownNameSuggests) {
  try {
    (void)wl::make_workload("h265");
    FAIL() << "expected UnknownNameError";
  } catch (const common::UnknownNameError& e) {
    EXPECT_NE(std::string(e.what()).find("Did you mean 'h264'?"),
              std::string::npos)
        << e.what();
  }
}

// --- Reward / policy registries ---------------------------------------------

TEST(RewardRegistry, ParameterisedSpecsWork) {
  const auto r = rtm::make_reward("target-slack(target=0.2,b=1.5)");
  const auto& target = dynamic_cast<const rtm::TargetSlackReward&>(*r);
  EXPECT_DOUBLE_EQ(target.params().target, 0.2);
  EXPECT_DOUBLE_EQ(target.params().b, 1.5);
  EXPECT_THROW((void)rtm::make_reward("bogus"), std::invalid_argument);
}

TEST(PolicyRegistry, ParameterisedSpecsWork) {
  const auto p = rtm::make_policy("epd(beta=5)");
  EXPECT_DOUBLE_EQ(dynamic_cast<const rtm::EpdPolicy&>(*p).beta(), 5.0);
  EXPECT_THROW((void)rtm::make_policy("thompson"), std::invalid_argument);
}

TEST(PolicyRegistry, NestedPolicySpecFlowsThroughRtm) {
  // The rtm factory passes the policy spec through to the policy registry.
  auto platform = hw::Platform::odroid_xu3_a15();
  const auto g = sim::make_governor("rtm(policy=epd(beta=9))");
  EXPECT_EQ(dynamic_cast<const rtm::RtmGovernor&>(*g).params().policy,
            "epd(beta=9)");
}

}  // namespace
}  // namespace prime
