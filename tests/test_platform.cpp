/// \file test_platform.cpp
/// \brief Unit tests for the board-level platform assembly.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "hw/platform.hpp"

namespace prime::hw {
namespace {

TEST(Platform, OdroidXu3Defaults) {
  const auto p = Platform::odroid_xu3_a15();
  EXPECT_EQ(p->name(), "odroid-xu3-a15");
  EXPECT_EQ(p->cluster().core_count(), 4u);
  EXPECT_EQ(p->opp_table().size(), 19u);
  // cpufreq-style mid-table boot frequency.
  EXPECT_EQ(p->cluster().current_opp_index(), 9u);
}

TEST(Platform, OppTableAddressStableAndShared) {
  const auto p = Platform::odroid_xu3_a15();
  EXPECT_EQ(&p->cluster().opp_table(), &p->opp_table());
}

TEST(Platform, ResetRestoresClusterAndSensor) {
  auto p = Platform::odroid_xu3_a15();
  (void)p->cluster().set_opp(18);
  (void)p->cluster().run_epoch({1000000, 0, 0, 0}, 0.040);
  (void)p->power_sensor().integrate(3.0, 0.040);
  p->reset();
  EXPECT_EQ(p->cluster().current_opp_index(), 9u);
  EXPECT_DOUBLE_EQ(p->cluster().total_energy(), 0.0);
  EXPECT_DOUBLE_EQ(p->power_sensor().measured_energy(), 0.0);
}

TEST(Platform, FromConfigDefaultsMatchXu3) {
  common::Config cfg;
  const auto p = Platform::from_config(cfg);
  EXPECT_EQ(p->cluster().core_count(), 4u);
  EXPECT_EQ(p->opp_table().size(), 19u);
}

TEST(Platform, FromConfigOverrides) {
  common::Config cfg;
  cfg.set_int("hw.cores", 8);
  cfg.set_int("hw.opps", 10);
  cfg.set_double("hw.fmin_mhz", 400.0);
  cfg.set_double("hw.fmax_mhz", 1600.0);
  cfg.set("hw.name", "custom");
  const auto p = Platform::from_config(cfg);
  EXPECT_EQ(p->cluster().core_count(), 8u);
  EXPECT_EQ(p->opp_table().size(), 10u);
  EXPECT_DOUBLE_EQ(p->opp_table().min().frequency, common::mhz(400.0));
  EXPECT_DOUBLE_EQ(p->opp_table().max().frequency, common::mhz(1600.0));
  EXPECT_EQ(p->name(), "custom");
}

TEST(Platform, SensorSeedMakesDistinctBoards) {
  auto a = Platform::odroid_xu3_a15(1);
  auto b = Platform::odroid_xu3_a15(2);
  // Different sensor devices have (almost surely) different gain errors.
  EXPECT_NE(a->power_sensor().gain(), b->power_sensor().gain());
}

}  // namespace
}  // namespace prime::hw
