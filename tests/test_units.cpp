/// \file test_units.cpp
/// \brief Unit tests for unit conversion helpers.
#include <gtest/gtest.h>

#include "common/units.hpp"

namespace prime::common {
namespace {

TEST(Units, FrequencyConversions) {
  EXPECT_DOUBLE_EQ(mhz(200.0), 2.0e8);
  EXPECT_DOUBLE_EQ(ghz(2.0), 2.0e9);
  EXPECT_DOUBLE_EQ(to_mhz(mhz(1400.0)), 1400.0);
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(ms(31.0), 0.031);
  EXPECT_DOUBLE_EQ(us(100.0), 1.0e-4);
  EXPECT_DOUBLE_EQ(to_ms(ms(42.0)), 42.0);
}

TEST(Units, EnergyPowerConversions) {
  EXPECT_DOUBLE_EQ(mj(500.0), 0.5);
  EXPECT_DOUBLE_EQ(to_mj(mj(7.0)), 7.0);
  EXPECT_DOUBLE_EQ(mw(1500.0), 1.5);
}

TEST(Units, CyclesAtFrequency) {
  EXPECT_EQ(cycles_at(ghz(1.0), 0.001), 1000000u);
  EXPECT_EQ(cycles_at(mhz(200.0), 0.0), 0u);
}

TEST(Units, TimeForCycles) {
  EXPECT_DOUBLE_EQ(time_for(2000000000ull, ghz(2.0)), 1.0);
  EXPECT_DOUBLE_EQ(time_for(0, ghz(1.0)), 0.0);
}

TEST(Units, RoundTripCyclesTime) {
  const Hertz f = mhz(1300.0);
  const Seconds t = 0.040;
  const Cycles c = cycles_at(f, t);
  EXPECT_NEAR(time_for(c, f), t, 1e-8);
}

}  // namespace
}  // namespace prime::common
