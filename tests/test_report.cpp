/// \file test_report.cpp
/// \brief Unit tests for table rendering. (Per-frame series CSV moved to the
///        streaming CsvSink — see test_telemetry.cpp.)
#include <gtest/gtest.h>

#include <sstream>

#include "sim/builder.hpp"
#include "sim/metrics.hpp"
#include "sim/report.hpp"

namespace prime::sim {
namespace {

TEST(PrintTable, AlignsColumns) {
  TextTable t;
  t.title = "Demo";
  t.headers = {"name", "value"};
  t.rows = {{"short", "1"}, {"a-much-longer-name", "2"}};
  std::ostringstream out;
  print_table(out, t);
  const std::string s = out.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
  // Every data line starts with the border character.
  EXPECT_NE(s.find("| short"), std::string::npos);
}

TEST(PrintTable, HandlesRaggedRows) {
  TextTable t;
  t.headers = {"a", "b", "c"};
  t.rows = {{"1"}};
  std::ostringstream out;
  print_table(out, t);  // must not throw
  EXPECT_FALSE(out.str().empty());
}

TEST(MakeComparisonTable, FormatsMetrics) {
  NormalizedMetrics m;
  m.governor = "rtm";
  m.normalized_energy = 1.114;
  m.normalized_performance = 0.957;
  m.miss_rate = 0.0123;
  m.mean_power = 3.456;
  const TextTable t = make_comparison_table("T", {m});
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "rtm");
  EXPECT_EQ(t.rows[0][1], "1.11");
  EXPECT_EQ(t.rows[0][2], "0.96");
  EXPECT_EQ(t.rows[0][3], "0.012");
  EXPECT_EQ(t.rows[0][4], "3.46");
}

TEST(PrintTable, EmptyTableRendersWithoutCrashing) {
  TextTable t;  // no title, no headers, no rows
  std::ostringstream out;
  print_table(out, t);
  EXPECT_FALSE(out.str().empty());  // the border rules still print
  EXPECT_EQ(out.str().find("\n\n"), std::string::npos);  // no stray blank line
}

TEST(PrintTable, TitleOnlyWhenNonEmpty) {
  TextTable t;
  t.headers = {"a"};
  std::ostringstream untitled;
  print_table(untitled, t);
  EXPECT_EQ(untitled.str().front(), '+');  // straight to the rule, no title

  t.title = "T";
  std::ostringstream titled;
  print_table(titled, t);
  EXPECT_EQ(titled.str().rfind("T\n+", 0), 0u);
}

TEST(PrintTable, RowsWiderThanHeadersDoNotOverflow) {
  // Extra cells beyond the header count are dropped, not printed ragged.
  TextTable t;
  t.headers = {"a", "b"};
  t.rows = {{"1", "2", "SURPLUS"}};
  std::ostringstream out;
  print_table(out, t);
  EXPECT_EQ(out.str().find("SURPLUS"), std::string::npos);
}

TEST(MakeComparisonTable, EmptyRowListRendersHeaderOnly) {
  const TextTable t = make_comparison_table("Empty", {});
  EXPECT_TRUE(t.rows.empty());
  ASSERT_EQ(t.headers.size(), 5u);
  std::ostringstream out;
  print_table(out, t);  // must not throw on a header-only table
  EXPECT_NE(out.str().find("Methodology"), std::string::npos);
}

TEST(MakeComparisonTable, ZeroEpochResultsFormatAsFiniteZeros) {
  // A zero-epoch run's aggregates are all guarded to 0 — the table must
  // render "0.00"-style cells, never "nan"/"inf" from a 0/0.
  const RunResult empty_run;
  const NormalizedMetrics m = normalize_against(empty_run, empty_run);
  const TextTable t = make_comparison_table("Z", {m});
  ASSERT_EQ(t.rows.size(), 1u);
  for (std::size_t c = 1; c < t.rows[0].size(); ++c) {
    EXPECT_EQ(t.rows[0][c].find("nan"), std::string::npos) << t.rows[0][c];
    EXPECT_EQ(t.rows[0][c].find("inf"), std::string::npos) << t.rows[0][c];
  }
}

TEST(MakeSweepTable, EmptySweepRendersHeaderOnly) {
  const SweepResult sweep;
  const TextTable t = make_sweep_table("Empty sweep", sweep);
  EXPECT_TRUE(t.rows.empty());
  std::ostringstream out;
  print_table(out, t);
  EXPECT_NE(out.str().find("Governor"), std::string::npos);
}

TEST(MakeSweepTable, FpsCellsTrimTrailingZeros) {
  // 23.98 keeps its fraction; 30.00 prints bare ("30"), so film and integer
  // rates stay distinguishable without noisy padding.
  SweepResult sweep;
  sweep.results.emplace_back();
  sweep.results.back().scenario.governor = "g";
  sweep.results.back().scenario.workload = "w";
  sweep.results.back().scenario.fps = 23.98;
  sweep.results.emplace_back();
  sweep.results.back().scenario.governor = "g";
  sweep.results.back().scenario.workload = "w";
  sweep.results.back().scenario.fps = 30.0;
  const TextTable t = make_sweep_table("fps", sweep);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0][2], "23.98");
  EXPECT_EQ(t.rows[1][2], "30");
}

}  // namespace
}  // namespace prime::sim
