/// \file test_report.cpp
/// \brief Unit tests for table rendering. (Per-frame series CSV moved to the
///        streaming CsvSink — see test_telemetry.cpp.)
#include <gtest/gtest.h>

#include <sstream>

#include "sim/report.hpp"

namespace prime::sim {
namespace {

TEST(PrintTable, AlignsColumns) {
  TextTable t;
  t.title = "Demo";
  t.headers = {"name", "value"};
  t.rows = {{"short", "1"}, {"a-much-longer-name", "2"}};
  std::ostringstream out;
  print_table(out, t);
  const std::string s = out.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
  // Every data line starts with the border character.
  EXPECT_NE(s.find("| short"), std::string::npos);
}

TEST(PrintTable, HandlesRaggedRows) {
  TextTable t;
  t.headers = {"a", "b", "c"};
  t.rows = {{"1"}};
  std::ostringstream out;
  print_table(out, t);  // must not throw
  EXPECT_FALSE(out.str().empty());
}

TEST(MakeComparisonTable, FormatsMetrics) {
  NormalizedMetrics m;
  m.governor = "rtm";
  m.normalized_energy = 1.114;
  m.normalized_performance = 0.957;
  m.miss_rate = 0.0123;
  m.mean_power = 3.456;
  const TextTable t = make_comparison_table("T", {m});
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "rtm");
  EXPECT_EQ(t.rows[0][1], "1.11");
  EXPECT_EQ(t.rows[0][2], "0.96");
  EXPECT_EQ(t.rows[0][3], "0.012");
  EXPECT_EQ(t.rows[0][4], "3.46");
}

}  // namespace
}  // namespace prime::sim
