/// \file test_bintrace.cpp
/// \brief Tests for the `.bt` binary epoch-trace format: binio round-trips,
///        writer/reader round-trips, the CSV differential oracle, corrupt
///        and truncated input rejection, determinism, and the sample-sink
///        composition.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>

#include "common/binio.hpp"
#include "common/csv.hpp"
#include "gov/simple.hpp"
#include "hw/platform.hpp"
#include "sim/bintrace.hpp"
#include "sim/experiment.hpp"
#include "sim/telemetry.hpp"
#include "wl/fft.hpp"

namespace prime::sim {
namespace {

wl::Application make_app(std::size_t frames, double fps = 30.0) {
  wl::WorkloadTrace trace =
      wl::FftTraceGenerator::paper_fft().generate(frames, 1);
  trace = trace.scaled_to_mean(0.45 * 4.0 * 2.0e9 / fps);
  return wl::Application("fft", std::move(trace), fps);
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Run `frames` epochs with the given sinks attached.
RunResult run_with_sinks(std::size_t frames,
                         std::vector<TelemetrySink*> sinks) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app(frames);
  gov::PerformanceGovernor g;
  RunOptions opt;
  opt.sinks = std::move(sinks);
  return run_simulation(*platform, app, g, opt);
}

/// Write a small synthetic sealed trace directly through the writer.
void write_synthetic(const std::string& path, std::size_t records,
                     bool sealed = true) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  BinTraceWriter writer(out);
  writer.begin("test-governor", "test-app");
  for (std::size_t i = 0; i < records; ++i) {
    EpochRecord r;
    r.epoch = i;
    r.period = 0.04;
    r.energy = 0.001 * static_cast<double>(i);
    writer.append(r);
  }
  if (sealed) writer.seal();
}

void expect_all_fields_equal(const EpochRecord& a, const EpochRecord& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.opp_index, b.opp_index);
  EXPECT_EQ(a.demand, b.demand);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.deadline_met, b.deadline_met);
  // Bit-exact, not approximately-equal: the format stores IEEE-754 patterns.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.period),
            std::bit_cast<std::uint64_t>(b.period));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.frequency),
            std::bit_cast<std::uint64_t>(b.frequency));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.frame_time),
            std::bit_cast<std::uint64_t>(b.frame_time));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.window),
            std::bit_cast<std::uint64_t>(b.window));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.energy),
            std::bit_cast<std::uint64_t>(b.energy));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.sensor_power),
            std::bit_cast<std::uint64_t>(b.sensor_power));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.temperature),
            std::bit_cast<std::uint64_t>(b.temperature));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.slack),
            std::bit_cast<std::uint64_t>(b.slack));
}

// --- binio helpers -----------------------------------------------------------

TEST(BinIo, IntegersRoundTripLittleEndian) {
  unsigned char buf[8] = {};
  common::store_u32(buf, 0x01020304u);
  // Little-endian on disk regardless of host order.
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
  EXPECT_EQ(common::load_u32(buf), 0x01020304u);

  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xDEADBEEFCAFEF00D},
        std::numeric_limits<std::uint64_t>::max()}) {
    common::store_u64(buf, v);
    EXPECT_EQ(common::load_u64(buf), v);
  }
}

TEST(BinIo, DoublesRoundTripBitExact) {
  unsigned char buf[8] = {};
  for (const double v :
       {0.0, -0.0, 1.0, -1.7e308, 5e-324 /* denormal */,
        std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN()}) {
    common::store_f64(buf, v);
    const double back = common::load_f64(buf);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(BinIo, RecordEncodeDecodeRoundTripsEveryField) {
  EpochRecord r;
  r.epoch = 123456789;
  r.period = 1.0 / 30.0;
  r.opp_index = 17;
  r.frequency = 1.4e9;
  r.demand = 0x1234567890ABCDEFull;
  r.executed = 0xFEDCBA0987654321ull;
  r.frame_time = 0.0312345678901234;
  r.window = 1.0 / 30.0;
  r.energy = 0.123456789;
  r.sensor_power = 3.14159265358979;
  r.temperature = 61.25;
  r.slack = -0.0625;
  r.deadline_met = false;

  unsigned char buf[kBinTraceRecordSize] = {};
  encode_record(r, buf);
  expect_all_fields_equal(decode_record(buf), r);
}

// --- Round-trip through a real run -------------------------------------------

TEST(BinTrace, RoundTripsARunFieldForField) {
  const std::string path = temp_path("roundtrip.bt");
  TraceSink trace;
  BinTraceSink bt(path);
  const RunResult run = run_with_sinks(300, {&trace, &bt});

  BinTraceReader reader(path);
  EXPECT_EQ(reader.version(), kBinTraceVersion);
  EXPECT_EQ(reader.governor(), run.governor);
  EXPECT_EQ(reader.application(), run.application);
  ASSERT_EQ(reader.record_count(), 300u);
  EXPECT_EQ(reader.file_size(),
            kBinTraceHeaderSize + 300 * kBinTraceRecordSize);

  // Streaming iteration delivers every record, in order, bit-exact.
  std::size_t i = 0;
  while (const auto record = reader.next()) {
    ASSERT_LT(i, trace.records().size());
    expect_all_fields_equal(*record, trace.records()[i]);
    ++i;
  }
  EXPECT_EQ(i, 300u);
  EXPECT_FALSE(reader.next().has_value());  // stays at end

  // O(1) random access agrees with the stream, in any order.
  reader.rewind();
  for (const std::size_t idx : {299u, 0u, 150u, 7u}) {
    expect_all_fields_equal(reader.at(idx), trace.records()[idx]);
  }
  EXPECT_THROW((void)reader.at(300), std::out_of_range);

  // Random access does not disturb the streaming cursor.
  const auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->epoch, 0u);
}

TEST(BinTrace, ReplayedAggregatesMatchTheRunBitForBit) {
  // Accumulating the stored records in order is the same fold over the same
  // doubles the engine performed — any difference means lost information.
  const std::string path = temp_path("aggregates.bt");
  BinTraceSink bt(path);
  const RunResult run = run_with_sinks(500, {&bt});

  BinTraceReader reader(path);
  RunResult replayed;
  while (const auto record = reader.next()) replayed.accumulate(*record);
  EXPECT_EQ(replayed.epoch_count, run.epoch_count);
  EXPECT_EQ(replayed.deadline_misses, run.deadline_misses);
  EXPECT_DOUBLE_EQ(replayed.total_energy, run.total_energy);
  EXPECT_DOUBLE_EQ(replayed.total_time, run.total_time);
  EXPECT_DOUBLE_EQ(replayed.performance_sum, run.performance_sum);
  EXPECT_DOUBLE_EQ(replayed.power_sum, run.power_sum);
}

// --- The differential oracle: .bt -> CSV == csv(path=) -----------------------

TEST(BinTrace, ConvertedCsvIsByteIdenticalToTheCsvSink) {
  // The format's correctness oracle: the same run observed by both sinks,
  // with the binary trace converted to CSV afterwards, must produce the
  // exact bytes the csv(path=) sink streamed live.
  const std::string bt_path = temp_path("differential.bt");
  const std::string csv_path = temp_path("differential.csv");
  {
    auto csv = make_sink("csv(path=" + csv_path + ")");
    auto bt = make_sink("bintrace(path=" + bt_path + ")");
    (void)run_with_sinks(400, {csv.get(), bt.get()});
  }  // sinks destroyed: CSV flushed

  BinTraceReader reader(bt_path);
  std::ostringstream converted;
  reader.to_csv(converted);
  EXPECT_EQ(converted.str(), read_bytes(csv_path));

  // And the conversion still parses as the documented six-column table.
  const common::CsvTable table = common::parse_csv(converted.str());
  EXPECT_EQ(table.header,
            (std::vector<std::string>{"frame", "demand", "freq_mhz", "slack",
                                      "power_w", "energy_mj"}));
  ASSERT_EQ(table.rows.size(), 400u);
  EXPECT_DOUBLE_EQ(table.column_as_double("frame")[399], 399.0);
}

// --- Determinism -------------------------------------------------------------

TEST(BinTrace, IdenticalSeededRunsProduceBitIdenticalFiles) {
  const std::string a = temp_path("det_a.bt");
  const std::string b = temp_path("det_b.bt");
  for (const std::string& path : {a, b}) {
    auto platform = hw::Platform::odroid_xu3_a15();
    ExperimentSpec spec;
    spec.workload = "mpeg4";
    spec.fps = 30.0;
    spec.frames = 400;
    spec.seed = 7;
    const wl::Application app = make_application(spec, *platform);
    const auto governor = make_governor("rtm-manycore", 0x5EED);
    BinTraceSink bt(path);
    RunOptions opt;
    opt.sinks = {&bt};
    (void)run_simulation(*platform, app, *governor, opt);
  }
  const std::string bytes_a = read_bytes(a);
  EXPECT_EQ(bytes_a.size(), kBinTraceHeaderSize + 400 * kBinTraceRecordSize);
  EXPECT_EQ(bytes_a, read_bytes(b));
}

// --- Composition with the sample sink ----------------------------------------

TEST(BinTrace, SampleCompositionWritesCeilFramesOverEvery) {
  // sample(every=n) forwards epoch 0 and every n-th after it, so a run of f
  // frames writes ceil(f/n) records.
  constexpr std::pair<std::size_t, std::size_t> kCases[] = {
      {25, 10}, {30, 10}, {31, 10}};
  for (const auto& [frames, every] : kCases) {
    const std::string path = temp_path("sampled.bt");
    auto sink = make_sink("sample(every=" + std::to_string(every) +
                          ",inner=bintrace(path=" + path + "))");
    (void)run_with_sinks(frames, {sink.get()});

    BinTraceReader reader(path);
    const std::size_t expected = (frames + every - 1) / every;
    ASSERT_EQ(reader.record_count(), expected)
        << frames << " frames, every=" << every;
    for (std::size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(reader.at(i).epoch, i * every);
    }
  }
}

// --- Sink behaviour ----------------------------------------------------------

TEST(BinTrace, SinkRewritesPerRunKeepingOnlyTheLatest) {
  // Unlike the appending CSV sink, a .bt holds one homogeneous record block:
  // a second run on the same sink truncates and rewrites.
  const std::string path = temp_path("rewrite.bt");
  BinTraceSink bt(path);
  (void)run_with_sinks(40, {&bt});
  (void)run_with_sinks(25, {&bt});
  BinTraceReader reader(path);
  EXPECT_EQ(reader.record_count(), 25u);
  EXPECT_EQ(reader.file_size(), kBinTraceHeaderSize + 25 * kBinTraceRecordSize);
}

TEST(BinTrace, ConstructedButNeverRunSinkTouchesNothing) {
  // Same lazy-open contract as CsvSink: spec validation or trial
  // construction must not clobber existing data.
  const std::string path = temp_path("precious.bt");
  write_bytes(path, "do-not-truncate");
  (void)make_sink("bintrace(path=" + path + ")");  // constructed, never run
  BinTraceSink direct(path);                       // ditto for the ctor
  EXPECT_EQ(direct.records_written(), 0u);
  EXPECT_EQ(read_bytes(path), "do-not-truncate");
}

TEST(BinTrace, RegistrySpecDiagnostics) {
  const auto names = sink_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "bintrace"), names.end());
  EXPECT_NE(dynamic_cast<BinTraceSink*>(
                make_sink("bintrace(path=/tmp/x.bt)").get()),
            nullptr);
  // A path is mandatory — binary records on stdout help nobody.
  EXPECT_THROW((void)make_sink("bintrace"), std::invalid_argument);
  // Typo'd keys get the registry's did-you-mean diagnostics.
  EXPECT_THROW((void)make_sink("bintrace(pth=/tmp/x.bt)"),
               common::UnknownKeyError);
}

// --- Writer misuse -----------------------------------------------------------

TEST(BinTraceWriter, RejectsOutOfOrderCalls) {
  std::ostringstream out;
  BinTraceWriter writer(out);
  EpochRecord r;
  EXPECT_THROW(writer.append(r), std::logic_error);  // before begin
  EXPECT_THROW(writer.seal(), std::logic_error);     // before begin
  writer.begin("g", "a");
  EXPECT_THROW(writer.begin("g", "a"), std::logic_error);  // twice
  writer.append(r);
  writer.seal();
  EXPECT_THROW(writer.append(r), std::logic_error);  // after seal
  EXPECT_THROW(writer.seal(), std::logic_error);     // twice
  EXPECT_TRUE(writer.sealed());
  EXPECT_EQ(writer.records_written(), 1u);
}

TEST(BinTraceWriter, SealThrowsWhenAWriteFailed) {
  // badbit is sticky: a disk-full failure anywhere in the run must surface
  // at seal(), never let the producer report success over a broken trace.
  std::ostringstream out;
  BinTraceWriter writer(out);
  writer.begin("g", "a");
  out.setstate(std::ios::badbit);  // simulate the disk filling mid-run
  writer.append(EpochRecord{});    // silently no-ops on the bad stream
  EXPECT_THROW(writer.seal(), std::runtime_error);
  EXPECT_FALSE(writer.sealed());
}

TEST(BinTraceWriter, TruncatesOverlongNamesAtTheFieldWidth) {
  std::stringstream out(std::ios::in | std::ios::out | std::ios::binary);
  BinTraceWriter writer(out);
  const std::string long_name(kBinTraceNameSize + 30, 'g');
  writer.begin(long_name, "app");
  writer.seal();

  const std::string path = temp_path("longname.bt");
  write_bytes(path, out.str());
  BinTraceReader reader(path);
  EXPECT_EQ(reader.governor(), std::string(kBinTraceNameSize, 'g'));
  EXPECT_EQ(reader.application(), "app");
}

// --- Corrupt-input hardening -------------------------------------------------
//
// Every malformed file must fail with a clear, specific error — never
// silently yield garbage records (the binary mirror of the from_csv
// malformed-cell hardening).

class BinTraceCorruptionTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_path("corrupt.bt");
    write_synthetic(path_, 5);
    bytes_ = read_bytes(path_);
    ASSERT_EQ(bytes_.size(), kBinTraceHeaderSize + 5 * kBinTraceRecordSize);
  }

  /// Re-write the file with \p bytes and return the reader's error message.
  std::string open_error(const std::string& bytes) {
    write_bytes(path_, bytes);
    try {
      BinTraceReader reader(path_);
    } catch (const BinTraceError& e) {
      return e.what();
    }
    ADD_FAILURE() << "expected BinTraceError";
    return {};
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(BinTraceCorruptionTest, ValidFileReadsBack) {
  BinTraceReader reader(path_);
  EXPECT_EQ(reader.record_count(), 5u);
  EXPECT_EQ(reader.governor(), "test-governor");
  EXPECT_EQ(reader.application(), "test-app");
  EXPECT_DOUBLE_EQ(reader.at(3).energy, 0.003);
}

TEST_F(BinTraceCorruptionTest, BadMagicRejected) {
  std::string bad = bytes_;
  bad[0] = 'X';
  EXPECT_NE(open_error(bad).find("bad magic"), std::string::npos);
}

TEST_F(BinTraceCorruptionTest, UnsupportedVersionRejected) {
  std::string bad = bytes_;
  bad[8] = 99;  // version u32 at offset 8, little-endian low byte
  const std::string what = open_error(bad);
  EXPECT_NE(what.find("unsupported version 99"), std::string::npos) << what;
}

TEST_F(BinTraceCorruptionTest, RecordSizeMismatchRejected) {
  std::string bad = bytes_;
  bad[16] = 80;  // record size u32 at offset 16
  const std::string what = open_error(bad);
  EXPECT_NE(what.find("record size mismatch"), std::string::npos) << what;
  EXPECT_NE(what.find("80"), std::string::npos) << what;
}

TEST_F(BinTraceCorruptionTest, HeaderSizeMismatchRejected) {
  std::string bad = bytes_;
  bad[12] = 64;  // header size u32 at offset 12
  EXPECT_NE(open_error(bad).find("header size mismatch"), std::string::npos);
}

TEST_F(BinTraceCorruptionTest, OverflowingRecordCountRejected) {
  // 96 * 2^59 ≡ 0 (mod 2^64), so a corrupt count of 5 + 2^59 makes
  // header + count*record wrap back onto the real 5-record file size; the
  // validation must bound the count before multiplying, not after.
  std::string bad = bytes_;
  const std::uint64_t wrapping = 5 + (std::uint64_t{1} << 59);
  unsigned char field[8];
  common::store_u64(field, wrapping);
  for (std::size_t i = 0; i < 8; ++i) {
    bad[24 + i] = static_cast<char>(field[i]);
  }
  const std::string what = open_error(bad);
  EXPECT_NE(what.find("truncated"), std::string::npos) << what;
}

TEST_F(BinTraceCorruptionTest, TruncatedFinalRecordRejected) {
  // Chop half of the last record: the reader must refuse up front, not
  // return four good records and one of garbage.
  const std::string truncated =
      bytes_.substr(0, bytes_.size() - kBinTraceRecordSize / 2);
  const std::string what = open_error(truncated);
  EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  EXPECT_NE(what.find("5 records"), std::string::npos) << what;
}

TEST_F(BinTraceCorruptionTest, TruncatedHeaderRejected) {
  EXPECT_NE(open_error(bytes_.substr(0, 20)).find("truncated header"),
            std::string::npos);
}

TEST_F(BinTraceCorruptionTest, TrailingBytesRejected) {
  EXPECT_NE(open_error(bytes_ + "xyz").find("trailing bytes"),
            std::string::npos);
}

TEST_F(BinTraceCorruptionTest, UnsealedFileRejected) {
  // A producer that died mid-run leaves the count sentinel in place; the
  // reader names the condition instead of guessing a count from the size.
  write_synthetic(path_, 5, /*sealed=*/false);
  try {
    BinTraceReader reader(path_);
    FAIL() << "expected BinTraceError";
  } catch (const BinTraceError& e) {
    EXPECT_NE(std::string(e.what()).find("unsealed"), std::string::npos);
  }
}

TEST_F(BinTraceCorruptionTest, SealedEmptyRunIsValid) {
  // Zero records with a sealed count is a legitimate file — distinct from
  // the unsealed sentinel.
  write_synthetic(path_, 0, /*sealed=*/true);
  BinTraceReader reader(path_);
  EXPECT_EQ(reader.record_count(), 0u);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_THROW((void)reader.at(0), std::out_of_range);
  std::ostringstream csv;
  reader.to_csv(csv);
  EXPECT_EQ(csv.str(), "frame,demand,freq_mhz,slack,power_w,energy_mj\n");
}

TEST_F(BinTraceCorruptionTest, MissingFileRejected) {
  try {
    BinTraceReader reader(temp_path("does-not-exist.bt"));
    FAIL() << "expected BinTraceError";
  } catch (const BinTraceError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

// --- concat_traces -----------------------------------------------------------

/// Write a sealed trace with distinctive records at the given epoch offset.
void write_chunk(const std::string& path, std::size_t offset,
                 std::size_t records, const std::string& governor = "g",
                 const std::string& application = "a") {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  BinTraceWriter writer(out);
  writer.begin(governor, application);
  for (std::size_t i = 0; i < records; ++i) {
    EpochRecord r;
    r.epoch = offset + i;
    r.period = 0.04;
    r.energy = 0.001 * static_cast<double>(offset + i);
    r.slack = -0.1 + 0.01 * static_cast<double>(i);
    writer.append(r);
  }
  writer.seal();
}

TEST(ConcatTraces, PreservesEveryRecordVerbatimInInputOrder) {
  const std::string a = temp_path("cat-a.bt");
  const std::string b = temp_path("cat-b.bt");
  const std::string c = temp_path("cat-c.bt");
  const std::string out = temp_path("cat-out.bt");
  write_chunk(a, 0, 3);
  write_chunk(b, 3, 0);  // an empty chunk is legitimate (sealed, 0 records)
  write_chunk(c, 3, 4);
  EXPECT_EQ(concat_traces({a, b, c}, out), 7u);

  BinTraceReader reader(out);
  EXPECT_EQ(reader.governor(), "g");
  EXPECT_EQ(reader.application(), "a");
  ASSERT_EQ(reader.record_count(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(reader.at(i).epoch, i);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(reader.at(i).energy),
              std::bit_cast<std::uint64_t>(0.001 * static_cast<double>(i)));
  }

  // Byte-level: the output's record block is the inputs' record blocks
  // appended — concatenation re-frames, never re-encodes.
  const std::string got = read_bytes(out);
  const std::string want =
      read_bytes(a).substr(kBinTraceHeaderSize) +
      read_bytes(c).substr(kBinTraceHeaderSize);
  EXPECT_EQ(got.substr(kBinTraceHeaderSize), want);
}

TEST(ConcatTraces, SingleInputRoundTripsByteIdentical) {
  const std::string a = temp_path("cat-single.bt");
  const std::string out = temp_path("cat-single-out.bt");
  write_chunk(a, 0, 5);
  EXPECT_EQ(concat_traces({a}, out), 5u);
  EXPECT_EQ(read_bytes(out), read_bytes(a));
}

TEST(ConcatTraces, RejectsMixedRunsNamingTheOffendingFile) {
  const std::string a = temp_path("cat-mix-a.bt");
  const std::string b = temp_path("cat-mix-b.bt");
  const std::string out = temp_path("cat-mix-out.bt");
  write_chunk(a, 0, 2, "rtm", "h264");
  write_chunk(b, 2, 2, "ondemand", "h264");
  try {
    concat_traces({a, b}, out);
    FAIL() << "expected BinTraceError";
  } catch (const BinTraceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(b), std::string::npos) << what;
    EXPECT_NE(what.find("rtm"), std::string::npos) << what;
    EXPECT_NE(what.find("ondemand"), std::string::npos) << what;
  }
  // Validation happens before writing: no output file appears.
  std::ifstream probe(out, std::ios::binary);
  EXPECT_FALSE(probe.good());
}

TEST(ConcatTraces, RejectsUnsealedInput) {
  const std::string a = temp_path("cat-unsealed-a.bt");
  const std::string b = temp_path("cat-unsealed-b.bt");
  write_chunk(a, 0, 2);
  write_synthetic(b, 2, /*sealed=*/false);
  try {
    concat_traces({a, b}, temp_path("cat-unsealed-out.bt"));
    FAIL() << "expected BinTraceError";
  } catch (const BinTraceError& e) {
    EXPECT_NE(std::string(e.what()).find("unsealed"), std::string::npos);
  }
}

TEST(ConcatTraces, RejectsEmptyInputList) {
  EXPECT_THROW(concat_traces({}, temp_path("cat-none.bt")), BinTraceError);
}

// --- Follow mode: live reads of a growing, unsealed trace --------------------
//
// The dashboard's /window endpoint reads the .bt of a run still in flight.
// Follow mode must (a) never return a torn record — the countable region is
// floor((size - header) / record) complete records, whatever half-written
// bytes trail it — and (b) notice the seal so the final count comes from the
// header, not the file size.

void append_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Patch the header's count field in place, as seal() does.
void seal_in_place(const std::string& path, std::uint64_t count) {
  unsigned char field[8];
  common::store_u64(field, count);
  std::fstream out(path, std::ios::binary | std::ios::in | std::ios::out);
  out.seekp(24);  // count field offset in the header
  out.write(reinterpret_cast<const char*>(field), 8);
}

TEST(BinTraceFollow, ReadsAnUnsealedGrowingFile) {
  const std::string path = temp_path("follow-grow.bt");
  write_synthetic(path, 3, /*sealed=*/false);

  BinTraceReader reader = BinTraceReader::follow(path);
  EXPECT_TRUE(reader.following());
  EXPECT_FALSE(reader.sealed());
  ASSERT_EQ(reader.record_count(), 3u);
  EXPECT_DOUBLE_EQ(reader.at(2).energy, 0.002);

  // The producer appends two more records; refresh picks them up.
  unsigned char buf[kBinTraceRecordSize];
  for (std::size_t i = 3; i < 5; ++i) {
    EpochRecord r;
    r.epoch = i;
    r.energy = 0.001 * static_cast<double>(i);
    encode_record(r, buf);
    append_bytes(path, std::string(reinterpret_cast<char*>(buf),
                                   kBinTraceRecordSize));
  }
  EXPECT_EQ(reader.refresh(), 5u);
  EXPECT_EQ(reader.at(4).epoch, 4u);
  EXPECT_DOUBLE_EQ(reader.at(4).energy, 0.004);
}

TEST(BinTraceFollow, TornTailIsInvisible) {
  // Kill-mid-write: the file ends in half a record. The reader's count must
  // exclude it — at() can never decode bytes the producer had not finished.
  const std::string path = temp_path("follow-torn.bt");
  write_synthetic(path, 4, /*sealed=*/false);
  append_bytes(path, std::string(kBinTraceRecordSize / 2, '\x7f'));

  BinTraceReader reader = BinTraceReader::follow(path);
  EXPECT_EQ(reader.record_count(), 4u);
  EXPECT_DOUBLE_EQ(reader.at(3).energy, 0.003);
  EXPECT_THROW((void)reader.at(4), std::out_of_range);

  // The torn record completes: its second half arrives, refresh sees 5.
  append_bytes(path, std::string(kBinTraceRecordSize / 2, '\0'));
  EXPECT_EQ(reader.refresh(), 5u);
  EXPECT_NO_THROW((void)reader.at(4));
}

TEST(BinTraceFollow, SealObservedMidFollow) {
  const std::string path = temp_path("follow-seal.bt");
  write_synthetic(path, 6, /*sealed=*/false);

  BinTraceReader reader = BinTraceReader::follow(path);
  EXPECT_FALSE(reader.sealed());
  seal_in_place(path, 6);
  EXPECT_EQ(reader.refresh(), 6u);
  EXPECT_TRUE(reader.sealed());
  // A sealed follower is inert: refresh keeps answering without re-statting.
  EXPECT_EQ(reader.refresh(), 6u);
  EXPECT_EQ(reader.at(5).epoch, 5u);
}

TEST(BinTraceFollow, SealedFileFollowsAsAlreadySealed) {
  const std::string path = temp_path("follow-sealed.bt");
  write_synthetic(path, 2, /*sealed=*/true);
  BinTraceReader reader = BinTraceReader::follow(path);
  EXPECT_TRUE(reader.following());
  EXPECT_TRUE(reader.sealed());
  EXPECT_EQ(reader.record_count(), 2u);
}

TEST(BinTraceFollow, StreamingIterationSpansRefreshes) {
  const std::string path = temp_path("follow-stream.bt");
  write_synthetic(path, 2, /*sealed=*/false);
  BinTraceReader reader = BinTraceReader::follow(path);
  EXPECT_EQ(reader.next()->epoch, 0u);
  EXPECT_EQ(reader.next()->epoch, 1u);
  EXPECT_FALSE(reader.next().has_value());  // caught up

  unsigned char buf[kBinTraceRecordSize];
  EpochRecord r;
  r.epoch = 2;
  encode_record(r, buf);
  append_bytes(path, std::string(reinterpret_cast<char*>(buf),
                                 kBinTraceRecordSize));
  EXPECT_EQ(reader.refresh(), 3u);
  EXPECT_EQ(reader.next()->epoch, 2u);  // resumes where it left off
}

TEST(BinTraceFollow, ShrinkingFileRejected) {
  // A trace that got shorter is a different file (truncated, replaced):
  // serving records from it would mix two runs' bytes.
  const std::string path = temp_path("follow-shrink.bt");
  write_synthetic(path, 5, /*sealed=*/false);
  BinTraceReader reader = BinTraceReader::follow(path);
  ASSERT_EQ(reader.record_count(), 5u);

  const std::string bytes = read_bytes(path);
  write_bytes(path, bytes.substr(0, bytes.size() - 2 * kBinTraceRecordSize));
  EXPECT_THROW((void)reader.refresh(), BinTraceError);
}

TEST(BinTraceFollow, RefreshOutsideFollowModeThrows) {
  const std::string path = temp_path("follow-misuse.bt");
  write_synthetic(path, 1, /*sealed=*/true);
  BinTraceReader reader(path);
  EXPECT_FALSE(reader.following());
  EXPECT_THROW((void)reader.refresh(), std::logic_error);
}

TEST(BinTraceFollow, LiveRunObservedThroughFollowMatchesTheSealedTrace) {
  // End to end: attach a bintrace sink, follow the file both mid-run (via a
  // callback poking at it every few epochs) and after sealing — every record
  // visible mid-run must be bit-identical to the sealed trace's.
  const std::string path = temp_path("follow-live.bt");
  BinTraceSink bt(path);
  std::size_t observed = 0;
  CallbackSink probe([&](const EpochRecord& record, gov::Governor&) {
    if (record.epoch % 64 != 63) return;
    try {
      BinTraceReader live = BinTraceReader::follow(path);
      // The sink buffers through an ofstream, so the on-disk prefix may lag
      // the epoch counter — whatever is visible must already be final bytes.
      EXPECT_LE(live.record_count(), record.epoch + 1);
      observed = std::max(observed, live.record_count());
      if (live.record_count() > 0) {
        EXPECT_EQ(live.at(live.record_count() - 1).epoch,
                  live.record_count() - 1);
      }
    } catch (const BinTraceError&) {
      // Even the header may still sit in the sink's write buffer — the
      // dashboard answers 503 (retry) for this; the next poke tries again.
    }
  });
  (void)run_with_sinks(300, {&bt, &probe});

  BinTraceReader sealed_reader(path);
  EXPECT_EQ(sealed_reader.record_count(), 300u);
}

}  // namespace
}  // namespace prime::sim
