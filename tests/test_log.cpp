/// \file test_log.cpp
/// \brief Unit tests for the leveled logger.
#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hpp"

namespace prime::common {
namespace {

/// RAII guard restoring logger state after each test.
class LogGuard {
 public:
  LogGuard() : level_(Log::level()) {}
  ~LogGuard() {
    Log::set_level(level_);
    Log::set_sink(nullptr);
  }

 private:
  LogLevel level_;
};

TEST(Log, RespectsThreshold) {
  LogGuard guard;
  std::ostringstream sink;
  Log::set_sink(&sink);
  Log::set_level(LogLevel::kWarn);
  log_info() << "should not appear";
  log_warn() << "warn line";
  log_error() << "error line";
  const std::string out = sink.str();
  EXPECT_EQ(out.find("should not appear"), std::string::npos);
  EXPECT_NE(out.find("warn line"), std::string::npos);
  EXPECT_NE(out.find("error line"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  LogGuard guard;
  std::ostringstream sink;
  Log::set_sink(&sink);
  Log::set_level(LogLevel::kOff);
  log_error() << "silent";
  EXPECT_TRUE(sink.str().empty());
}

TEST(Log, StreamStyleComposesValues) {
  LogGuard guard;
  std::ostringstream sink;
  Log::set_sink(&sink);
  Log::set_level(LogLevel::kTrace);
  log_debug() << "epoch " << 42 << " slack " << 0.5;
  EXPECT_NE(sink.str().find("epoch 42 slack 0.5"), std::string::npos);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(Log::level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(Log::level_name(LogLevel::kError), "ERROR");
  EXPECT_STREQ(Log::level_name(LogLevel::kOff), "OFF");
}

TEST(Log, MessageIncludesLevelTag) {
  LogGuard guard;
  std::ostringstream sink;
  Log::set_sink(&sink);
  Log::set_level(LogLevel::kInfo);
  log_info() << "tagged";
  EXPECT_NE(sink.str().find("[INFO] tagged"), std::string::npos);
}

}  // namespace
}  // namespace prime::common
