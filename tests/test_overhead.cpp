/// \file test_overhead.cpp
/// \brief Unit tests for the learning-overhead model (T_OVH).
#include <gtest/gtest.h>

#include "rtm/overhead.hpp"

namespace prime::rtm {
namespace {

TEST(OverheadModel, SingleUpdateTotalsComponents) {
  OverheadParams p;
  p.sensor_read = common::us(2.0);
  p.state_mapping = common::us(3.0);
  p.q_update = common::us(8.0);
  p.action_select = common::us(7.0);
  const OverheadModel m(p);
  EXPECT_NEAR(m.epoch_overhead(1), common::us(20.0), 1e-15);
}

TEST(OverheadModel, PerCoreUpdatesScaleLinearly) {
  const OverheadModel m;
  const double one = m.epoch_overhead(1);
  const double four = m.epoch_overhead(4);
  EXPECT_NEAR(four - one, 3.0 * m.params().q_update, 1e-15);
}

TEST(OverheadModel, SharedTableCheaperThanPerCore) {
  // The paper's many-core argument: one shared-table update per epoch beats
  // one update per core.
  const OverheadModel m;
  EXPECT_LT(m.epoch_overhead(1), m.epoch_overhead(4));
}

TEST(OverheadModel, ZeroUpdatesStillPaysSensing) {
  const OverheadModel m;
  EXPECT_GT(m.epoch_overhead(0), 0.0);
}

TEST(OverheadModel, DefaultsAreMicrosecondScale) {
  const OverheadModel m;
  EXPECT_LT(m.epoch_overhead(1), common::ms(0.1));
  EXPECT_GT(m.epoch_overhead(1), common::us(5.0));
}

}  // namespace
}  // namespace prime::rtm
