/// \file test_ring_buffer.cpp
/// \brief Unit tests for the fixed-capacity ring buffer.
#include <gtest/gtest.h>

#include <string>

#include "common/ring_buffer.hpp"

namespace prime::common {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
  EXPECT_FALSE(rb.full());
}

TEST(RingBuffer, PushAndIndexOldestFirst) {
  RingBuffer<int> rb(3);
  rb.push(10);
  rb.push(20);
  EXPECT_EQ(rb[0], 10);
  EXPECT_EQ(rb[1], 20);
  EXPECT_EQ(rb.front(), 10);
  EXPECT_EQ(rb.back(), 20);
}

TEST(RingBuffer, OverwritesOldestWhenFull) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb[0], 3);
  EXPECT_EQ(rb[1], 4);
  EXPECT_EQ(rb[2], 5);
}

TEST(RingBuffer, OutOfRangeThrows) {
  RingBuffer<int> rb(2);
  rb.push(1);
  EXPECT_THROW((void)rb[1], std::out_of_range);
  RingBuffer<int> empty(2);
  EXPECT_THROW((void)empty.front(), std::out_of_range);
  EXPECT_THROW((void)empty.back(), std::out_of_range);
}

TEST(RingBuffer, ZeroCapacityThrows) {
  // A silent clamp to 1 hid caller bugs — a buffer that can hold nothing is
  // a contradiction the constructor now rejects.
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, CapacityOneEvicts) {
  RingBuffer<int> rb(1);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.front(), 2);
  EXPECT_EQ(rb.back(), 2);
  EXPECT_EQ(rb.size(), 1u);
}

TEST(RingBuffer, ClearKeepsCapacity) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.capacity(), 3u);
  rb.push(9);
  EXPECT_EQ(rb.front(), 9);
}

TEST(RingBuffer, ToVectorOldestFirst) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 4; ++i) rb.push(i);
  const auto v = rb.to_vector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 2);
  EXPECT_EQ(v[2], 4);
}

TEST(RingBuffer, WorksWithNonTrivialTypes) {
  RingBuffer<std::string> rb(2);
  rb.push("alpha");
  rb.push("beta");
  rb.push("gamma");
  EXPECT_EQ(rb.front(), "beta");
  EXPECT_EQ(rb.back(), "gamma");
}

/// Property: after N pushes, size == min(N, capacity) and back() is last push.
class RingBufferSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RingBufferSweep, SizeInvariant) {
  const auto [cap, pushes] = GetParam();
  RingBuffer<std::size_t> rb(cap);
  for (std::size_t i = 0; i < pushes; ++i) rb.push(i);
  EXPECT_EQ(rb.size(), std::min(pushes, cap));
  if (pushes > 0) {
    EXPECT_EQ(rb.back(), pushes - 1);
    EXPECT_EQ(rb.front(), pushes <= cap ? 0 : pushes - cap);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CapacityByPushes, RingBufferSweep,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{7}, std::size_t{64}),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{7}, std::size_t{100})));

}  // namespace
}  // namespace prime::common
