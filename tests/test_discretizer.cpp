/// \file test_discretizer.cpp
/// \brief Unit tests for Q-table state discretisation.
#include <gtest/gtest.h>

#include "rtm/discretizer.hpp"

namespace prime::rtm {
namespace {

TEST(Discretizer, RejectsInvalidParams) {
  DiscretizerParams p;
  p.workload_levels = 0;
  EXPECT_THROW(Discretizer{p}, std::invalid_argument);
  p.workload_levels = 5;
  p.slack_levels = 0;
  EXPECT_THROW(Discretizer{p}, std::invalid_argument);
  p.slack_levels = 5;
  p.slack_clip = 0.0;
  EXPECT_THROW(Discretizer{p}, std::invalid_argument);
}

TEST(Discretizer, PaperDefaultIs5x5) {
  const Discretizer d;
  EXPECT_EQ(d.state_count(), 25u);  // N = 5 per the paper's DSE
}

TEST(Discretizer, WorkloadLevelsUniform) {
  const Discretizer d;
  EXPECT_EQ(d.workload_level(0.0), 0u);
  EXPECT_EQ(d.workload_level(0.19), 0u);
  EXPECT_EQ(d.workload_level(0.21), 1u);
  EXPECT_EQ(d.workload_level(0.99), 4u);
  EXPECT_EQ(d.workload_level(1.0), 4u);  // top edge closed
}

TEST(Discretizer, WorkloadClampsOutOfRange) {
  const Discretizer d;
  EXPECT_EQ(d.workload_level(-0.5), 0u);
  EXPECT_EQ(d.workload_level(2.0), 4u);
}

TEST(Discretizer, SlackLevelsSymmetricAroundZero) {
  const Discretizer d;  // clip 0.5, 5 levels of width 0.2
  EXPECT_EQ(d.slack_level(-0.5), 0u);
  EXPECT_EQ(d.slack_level(-0.25), 1u);
  EXPECT_EQ(d.slack_level(0.0), 2u);  // the "on target" middle bin
  EXPECT_EQ(d.slack_level(0.25), 3u);
  EXPECT_EQ(d.slack_level(0.5), 4u);
}

TEST(Discretizer, SlackClampsBeyondClip) {
  const Discretizer d;
  EXPECT_EQ(d.slack_level(-3.0), 0u);
  EXPECT_EQ(d.slack_level(3.0), 4u);
}

TEST(Discretizer, StateIndexIsWorkloadMajor) {
  const Discretizer d;
  EXPECT_EQ(d.state_of(0.0, -1.0), 0u);
  EXPECT_EQ(d.state_of(1.0, 1.0), 24u);
  const std::size_t s = d.state_of(0.5, 0.0);
  const auto levels = d.levels_of(s);
  EXPECT_EQ(levels.workload, d.workload_level(0.5));
  EXPECT_EQ(levels.slack, d.slack_level(0.0));
}

TEST(Discretizer, LevelsOfInvertsStateOf) {
  DiscretizerParams p;
  p.workload_levels = 3;
  p.slack_levels = 7;
  const Discretizer d(p);
  for (std::size_t w = 0; w < 3; ++w) {
    for (std::size_t l = 0; l < 7; ++l) {
      const std::size_t s = w * 7 + l;
      const auto back = d.levels_of(s);
      EXPECT_EQ(back.workload, w);
      EXPECT_EQ(back.slack, l);
    }
  }
}

/// Property: state_of never exceeds state_count over a dense input sweep,
/// for several table sizes (the N of the paper's design-space exploration).
class DiscretizerSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DiscretizerSizeSweep, AllStatesInRange) {
  DiscretizerParams p;
  p.workload_levels = GetParam();
  p.slack_levels = GetParam();
  const Discretizer d(p);
  for (double w = -0.2; w <= 1.2; w += 0.05) {
    for (double l = -0.8; l <= 0.8; l += 0.05) {
      EXPECT_LT(d.state_of(w, l), d.state_count());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TableSizes, DiscretizerSizeSweep,
                         ::testing::Values(std::size_t{2}, std::size_t{3},
                                           std::size_t{5}, std::size_t{8}));

}  // namespace
}  // namespace prime::rtm
