/// \file test_schedutil_pid.cpp
/// \brief Unit tests for the schedutil and PID baseline governors.
#include <gtest/gtest.h>

#include "gov/pid.hpp"
#include "gov/schedutil.hpp"

namespace prime::gov {
namespace {

DecisionContext make_ctx(const hw::OppTable& opps) {
  DecisionContext ctx;
  ctx.period = 0.040;
  ctx.cores = 4;
  ctx.opps = &opps;
  return ctx;
}

EpochObservation obs_with_load(const hw::OppTable& opps, std::size_t opp_index,
                               double load) {
  EpochObservation o;
  o.period = 0.040;
  o.window = 0.040;
  o.frame_time = load * 0.040;
  o.opp_index = opp_index;
  o.core_cycles = {
      common::cycles_at(opps.at(opp_index).frequency, load * 0.040), 0, 0, 0};
  o.deadline_met = o.frame_time <= o.period;
  return o;
}

TEST(Schedutil, StartsFast) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  SchedutilGovernor g;
  EXPECT_EQ(g.decide(make_ctx(opps), std::nullopt), 18u);
}

TEST(Schedutil, FrequencyInvariantFormula) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  SchedutilGovernor g;
  auto ctx = make_ctx(opps);
  (void)g.decide(ctx, std::nullopt);
  // 50 % load at 1000 MHz -> util_cap 0.25 -> f = 1.25 * 0.25 * 2000 = 625.
  std::size_t idx = 0;
  // Ramp-down is rate-limited; feed the observation until allowed.
  for (int i = 0; i < 4; ++i) idx = g.decide(ctx, obs_with_load(opps, 8, 0.5));
  EXPECT_EQ(idx, opps.lowest_at_least(common::mhz(625.0)));
}

TEST(Schedutil, RampUpImmediate) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  SchedutilGovernor g;
  auto ctx = make_ctx(opps);
  (void)g.decide(ctx, std::nullopt);
  std::size_t idx = 0;
  for (int i = 0; i < 4; ++i) idx = g.decide(ctx, obs_with_load(opps, 8, 0.3));
  const std::size_t low = idx;
  // Saturated at 1000 MHz: util_cap = 0.5 -> target 1.25 * 0.5 * 2000 = 1250.
  idx = g.decide(ctx, obs_with_load(opps, 8, 1.0));
  EXPECT_GT(idx, low);
  EXPECT_EQ(idx, opps.lowest_at_least(common::mhz(1250.0)));
}

TEST(Schedutil, RampDownRateLimited) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  SchedutilGovernor g;
  auto ctx = make_ctx(opps);
  const std::size_t start = g.decide(ctx, std::nullopt);
  // First low-load observation must hold (down-rate limit of 2 epochs).
  EXPECT_EQ(g.decide(ctx, obs_with_load(opps, start, 0.1)), start);
  EXPECT_LT(g.decide(ctx, obs_with_load(opps, start, 0.1)), start);
}

TEST(Schedutil, ResetForgets) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  SchedutilGovernor g;
  auto ctx = make_ctx(opps);
  (void)g.decide(ctx, std::nullopt);
  g.reset();
  EXPECT_EQ(g.decide(ctx, std::nullopt), 18u);
}

TEST(Pid, StartsFastThenSettles) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  PidGovernor g;
  auto ctx = make_ctx(opps);
  const std::size_t start = g.decide(ctx, std::nullopt);
  EXPECT_EQ(start, 18u);
}

TEST(Pid, DrivesSlackTowardSetpoint) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  PidGovernor g;
  auto ctx = make_ctx(opps);
  std::size_t idx = g.decide(ctx, std::nullopt);
  // Closed loop against a fixed-cycle workload: 36 Mcycles on the critical
  // core, so slack(f) = 1 - 0.9 GHz / f.
  const common::Cycles demand = 36000000;
  for (int i = 0; i < 60; ++i) {
    EpochObservation o;
    o.period = 0.040;
    o.opp_index = idx;
    o.frame_time = common::time_for(demand, opps.at(idx).frequency);
    o.window = std::max(o.frame_time, o.period);
    o.core_cycles = {demand, 0, 0, 0};
    o.deadline_met = o.frame_time <= o.period;
    idx = g.decide(ctx, o);
  }
  // Setpoint slack 0.10 -> f ~ 0.9/0.9 = 1.0 GHz; allow one step either way.
  const double f = common::to_mhz(opps.at(idx).frequency);
  EXPECT_GE(f, 900.0);
  EXPECT_LE(f, 1200.0);
}

TEST(Pid, IntegralAntiWindup) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  PidGovernor g;
  auto ctx = make_ctx(opps);
  std::size_t idx = g.decide(ctx, std::nullopt);
  // Long saturation at the top (impossible demand), then demand vanishes:
  // the controller must come down quickly (integral clamped).
  for (int i = 0; i < 50; ++i) idx = g.decide(ctx, obs_with_load(opps, idx, 2.0));
  EXPECT_EQ(idx, 18u);
  int steps_to_drop = 0;
  while (idx > 4 && steps_to_drop < 25) {
    idx = g.decide(ctx, obs_with_load(opps, idx, 0.05));
    ++steps_to_drop;
  }
  EXPECT_LT(steps_to_drop, 25);
}

TEST(Pid, CheapOverhead) {
  PidGovernor g;
  EXPECT_LT(g.epoch_overhead(), common::us(5.0));
}

TEST(Pid, ResetClearsState) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  PidGovernor g;
  auto ctx = make_ctx(opps);
  (void)g.decide(ctx, std::nullopt);
  (void)g.decide(ctx, obs_with_load(opps, 18, 0.1));
  g.reset();
  EXPECT_EQ(g.decide(ctx, std::nullopt), 18u);
}

}  // namespace
}  // namespace prime::gov
