/// \file test_convergence.cpp
/// \brief Unit tests for policy-stability convergence detection.
#include <gtest/gtest.h>

#include "sim/convergence.hpp"

namespace prime::sim {
namespace {

TEST(PolicyConvergence, DetectsStableStreak) {
  PolicyConvergence c(3);
  const std::vector<std::size_t> pol{1, 2, 3};
  c.observe(0, pol, 0);
  EXPECT_FALSE(c.converged());  // first observation only records the policy
  c.observe(1, pol, 5);
  c.observe(2, pol, 6);
  c.observe(3, pol, 7);
  EXPECT_TRUE(c.converged());
  EXPECT_EQ(c.convergence_epoch(), 1u);
  EXPECT_EQ(c.explorations_at_convergence(), 5u);
}

TEST(PolicyConvergence, ChangeResetsStreak) {
  PolicyConvergence c(3);
  c.observe(0, {1}, 0);
  c.observe(1, {1}, 1);
  c.observe(2, {2}, 2);  // changed
  c.observe(3, {2}, 3);
  c.observe(4, {2}, 4);
  EXPECT_FALSE(c.converged());
  c.observe(5, {2}, 5);
  EXPECT_TRUE(c.converged());
  EXPECT_EQ(c.convergence_epoch(), 3u);
}

TEST(PolicyConvergence, FreezesAfterConvergence) {
  PolicyConvergence c(2);
  c.observe(0, {1}, 0);
  c.observe(1, {1}, 1);
  c.observe(2, {1}, 2);
  ASSERT_TRUE(c.converged());
  const auto epoch = c.convergence_epoch();
  c.observe(3, {9}, 9);  // later churn is ignored
  EXPECT_TRUE(c.converged());
  EXPECT_EQ(c.convergence_epoch(), epoch);
}

TEST(PolicyConvergence, EmptyPolicyNeverConverges) {
  PolicyConvergence c(2);
  for (std::size_t i = 0; i < 10; ++i) c.observe(i, {}, i);
  EXPECT_FALSE(c.converged());
}

TEST(PolicyConvergence, ZeroWindowClampedToOne) {
  PolicyConvergence c(0);
  c.observe(0, {1}, 0);
  c.observe(1, {1}, 1);
  EXPECT_TRUE(c.converged());
}

TEST(PolicyConvergence, ResetRestarts) {
  PolicyConvergence c(2);
  c.observe(0, {1}, 0);
  c.observe(1, {1}, 1);
  c.observe(2, {1}, 2);
  c.reset();
  EXPECT_FALSE(c.converged());
  EXPECT_EQ(c.convergence_epoch(), 0u);
}

}  // namespace
}  // namespace prime::sim
