/// \file test_power_sensor.cpp
/// \brief Unit tests for the INA231-like power sensor emulation.
#include <gtest/gtest.h>

#include "hw/power_sensor.hpp"

namespace prime::hw {
namespace {

TEST(PowerSensor, ReadingTracksTruePower) {
  PowerSensor s(PowerSensorParams{}, 1);
  double sum = 0.0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) sum += s.sample(3.0);
  // Gain error <= 1 %, noise averages out: within 2 % of truth.
  EXPECT_NEAR(sum / n, 3.0, 0.06);
}

TEST(PowerSensor, QuantisesToLsb) {
  PowerSensorParams p;
  p.lsb = 0.25;
  p.noise_sigma = 0.0;
  p.gain_error = 0.0;
  PowerSensor s(p, 2);
  const double r = s.sample(1.1);
  EXPECT_DOUBLE_EQ(r, 1.0);  // rounds to nearest 0.25
}

TEST(PowerSensor, ClampsToRange) {
  PowerSensorParams p;
  p.max_range = 2.0;
  p.noise_sigma = 0.0;
  p.gain_error = 0.0;
  PowerSensor s(p, 3);
  EXPECT_LE(s.sample(100.0), 2.0);
  EXPECT_GE(s.sample(-5.0), 0.0);
}

TEST(PowerSensor, GainIsFixedPerDevice) {
  PowerSensor s(PowerSensorParams{}, 4);
  const double g = s.gain();
  EXPECT_GE(g, 0.99);
  EXPECT_LE(g, 1.01);
  (void)s.sample(1.0);
  EXPECT_DOUBLE_EQ(s.gain(), g);  // sampling never changes the gain
}

TEST(PowerSensor, IntegratesEnergy) {
  PowerSensorParams p;
  p.noise_sigma = 0.0;
  p.gain_error = 0.0;
  p.lsb = 0.0;
  PowerSensor s(p, 5);
  (void)s.integrate(2.0, 0.5);
  (void)s.integrate(4.0, 0.25);
  EXPECT_NEAR(s.measured_energy(), 2.0, 1e-12);
}

TEST(PowerSensor, ResetClearsEnergyKeepsGain) {
  PowerSensor s(PowerSensorParams{}, 6);
  const double g = s.gain();
  (void)s.integrate(1.0, 1.0);
  s.reset();
  EXPECT_DOUBLE_EQ(s.measured_energy(), 0.0);
  EXPECT_DOUBLE_EQ(s.gain(), g);
}

TEST(PowerSensor, DeterministicForSameSeed) {
  PowerSensor a(PowerSensorParams{}, 42);
  PowerSensor b(PowerSensorParams{}, 42);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.sample(2.5), b.sample(2.5));
  }
}

TEST(PowerSensor, MeasuredEnergyCloseToTrueEnergy) {
  PowerSensor s(PowerSensorParams{}, 7);
  double true_energy = 0.0;
  for (int i = 0; i < 1000; ++i) {
    (void)s.integrate(3.5, 0.04);
    true_energy += 3.5 * 0.04;
  }
  EXPECT_NEAR(s.measured_energy() / true_energy, 1.0, 0.02);
}

}  // namespace
}  // namespace prime::hw
