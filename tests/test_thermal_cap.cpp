/// \file test_thermal_cap.cpp
/// \brief Unit tests for the thermal-capping governor decorator.
#include <gtest/gtest.h>

#include "gov/simple.hpp"
#include "gov/thermal_cap.hpp"

namespace prime::gov {
namespace {

DecisionContext make_ctx(const hw::OppTable& opps) {
  DecisionContext ctx;
  ctx.period = 0.040;
  ctx.cores = 4;
  ctx.opps = &opps;
  return ctx;
}

EpochObservation obs_at_temp(double celsius) {
  EpochObservation o;
  o.period = 0.040;
  o.frame_time = 0.030;
  o.window = 0.040;
  o.temperature = celsius;
  o.deadline_met = true;
  return o;
}

TEST(ThermalCap, RejectsBadConstruction) {
  EXPECT_THROW(ThermalCapGovernor(nullptr), std::invalid_argument);
  ThermalCapParams p;
  p.trip = 70.0;
  p.release = 80.0;
  EXPECT_THROW(
      ThermalCapGovernor(std::make_unique<PerformanceGovernor>(), p),
      std::invalid_argument);
}

TEST(ThermalCap, TransparentWhenCool) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ThermalCapGovernor g(std::make_unique<PerformanceGovernor>());
  auto ctx = make_ctx(opps);
  EXPECT_EQ(g.decide(ctx, std::nullopt), 18u);
  EXPECT_EQ(g.decide(ctx, obs_at_temp(50.0)), 18u);
  EXPECT_EQ(g.capped_epochs(), 0u);
}

TEST(ThermalCap, CapsAboveTrip) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ThermalCapParams p;
  p.trip = 85.0;
  p.cap_step = 2;
  ThermalCapGovernor g(std::make_unique<PerformanceGovernor>(), p);
  auto ctx = make_ctx(opps);
  (void)g.decide(ctx, std::nullopt);
  const std::size_t first_capped = g.decide(ctx, obs_at_temp(90.0));
  EXPECT_EQ(first_capped, 16u);  // 18 -> cap 16
  const std::size_t second = g.decide(ctx, obs_at_temp(90.0));
  EXPECT_EQ(second, 14u);  // ratchets down while hot
  EXPECT_EQ(g.capped_epochs(), 2u);
}

TEST(ThermalCap, ReleasesWithHysteresis) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ThermalCapParams p;
  p.trip = 85.0;
  p.release = 78.0;
  ThermalCapGovernor g(std::make_unique<PerformanceGovernor>(), p);
  auto ctx = make_ctx(opps);
  (void)g.decide(ctx, std::nullopt);
  (void)g.decide(ctx, obs_at_temp(90.0));  // cap at 16
  // Between release and trip: cap holds.
  EXPECT_EQ(g.decide(ctx, obs_at_temp(82.0)), 16u);
  // Below release: relaxes one step per epoch.
  EXPECT_EQ(g.decide(ctx, obs_at_temp(70.0)), 17u);
  EXPECT_EQ(g.decide(ctx, obs_at_temp(70.0)), 18u);  // fully released
}

TEST(ThermalCap, NameComposes) {
  ThermalCapGovernor g(std::make_unique<PerformanceGovernor>());
  EXPECT_EQ(g.name(), "performance+thermal-cap");
}

TEST(ThermalCap, ResetClearsCapAndInner) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ThermalCapGovernor g(std::make_unique<PerformanceGovernor>());
  auto ctx = make_ctx(opps);
  (void)g.decide(ctx, std::nullopt);
  (void)g.decide(ctx, obs_at_temp(95.0));
  g.reset();
  EXPECT_EQ(g.capped_epochs(), 0u);
  EXPECT_EQ(g.decide(ctx, std::nullopt), 18u);
}

TEST(ThermalCap, CapNeverBelowZeroIndex) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ThermalCapParams p;
  p.cap_step = 7;
  ThermalCapGovernor g(std::make_unique<PerformanceGovernor>(), p);
  auto ctx = make_ctx(opps);
  (void)g.decide(ctx, std::nullopt);
  std::size_t idx = 18;
  for (int i = 0; i < 10; ++i) idx = g.decide(ctx, obs_at_temp(99.0));
  EXPECT_EQ(idx, 0u);
}

}  // namespace
}  // namespace prime::gov
