/// \file test_oracle.cpp
/// \brief Unit tests for the clairvoyant Oracle governor.
#include <gtest/gtest.h>

#include "gov/oracle.hpp"

namespace prime::gov {
namespace {

DecisionContext make_ctx(const hw::OppTable& opps, double period = 0.040) {
  DecisionContext ctx;
  ctx.period = period;
  ctx.cores = 4;
  ctx.opps = &opps;
  return ctx;
}

TEST(Oracle, PicksLowestFeasibleFrequency) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  OracleParams p;
  p.guard_band = 0.0;
  OracleGovernor g(p);
  // 36 Mcycles on the critical core in 40 ms -> needs >= 900 MHz.
  g.preview_next_frame({36000000, 144000000, 0.0, 1.0e9});
  EXPECT_EQ(g.decide(make_ctx(opps), std::nullopt),
            opps.lowest_at_least(36000000.0 / 0.040));
}

TEST(Oracle, GuardBandRaisesChoice) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  OracleParams loose;
  loose.guard_band = 0.0;
  OracleParams tight;
  tight.guard_band = 0.15;
  OracleGovernor a(loose);
  OracleGovernor b(tight);
  // Demand right at a 1000 MHz boundary.
  a.preview_next_frame({40000000, 160000000, 0.0, 1.0e9});
  b.preview_next_frame({40000000, 160000000, 0.0, 1.0e9});
  const auto ia = a.decide(make_ctx(opps), std::nullopt);
  const auto ib = b.decide(make_ctx(opps), std::nullopt);
  EXPECT_GT(ib, ia);
}

TEST(Oracle, InfeasibleDemandUsesFastest) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  OracleGovernor g;
  g.preview_next_frame({1000000000, 4000000000, 0.0, 1.0e9});  // 1 Gcycle in 40 ms
  EXPECT_EQ(g.decide(make_ctx(opps), std::nullopt), 18u);
}

TEST(Oracle, WithoutPreviewDefaultsToFastest) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  OracleGovernor g;
  EXPECT_EQ(g.decide(make_ctx(opps), std::nullopt), 18u);
}

TEST(Oracle, PreviewConsumedAfterDecision) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  OracleParams p;
  p.guard_band = 0.0;
  OracleGovernor g(p);
  g.preview_next_frame({1000000, 4000000, 0.0, 1.0e9});  // trivially light
  const auto first = g.decide(make_ctx(opps), std::nullopt);
  EXPECT_EQ(first, 0u);
  // No new preview: falls back to fastest (failsafe).
  EXPECT_EQ(g.decide(make_ctx(opps), std::nullopt), 18u);
}

TEST(Oracle, ScalesWithPeriod) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  OracleParams p;
  p.guard_band = 0.0;
  OracleGovernor g(p);
  g.preview_next_frame({36000000, 144000000, 0.0, 1.0e9});
  const auto at40 = g.decide(make_ctx(opps, 0.040), std::nullopt);
  g.preview_next_frame({36000000, 144000000, 0.0, 1.0e9});
  const auto at20 = g.decide(make_ctx(opps, 0.020), std::nullopt);
  EXPECT_GT(at20, at40);  // shorter deadline needs a faster OPP
}

TEST(Oracle, NoLearningOverhead) {
  OracleGovernor g;
  EXPECT_DOUBLE_EQ(g.epoch_overhead(), 0.0);
}

TEST(Oracle, ResetClearsPreview) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  OracleGovernor g;
  g.preview_next_frame({1000000, 4000000, 0.0, 1.0e9});
  g.reset();
  EXPECT_EQ(g.decide(make_ctx(opps), std::nullopt), 18u);
}

/// Property: the Oracle's choice always meets the deadline when feasible, and
/// the next-lower OPP would not.
class OracleDemandSweep : public ::testing::TestWithParam<double> {};

TEST_P(OracleDemandSweep, ChoiceIsTightlyOptimal) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  OracleParams p;
  p.guard_band = 0.0;
  OracleGovernor g(p);
  const double period = 0.040;
  const auto demand = static_cast<common::Cycles>(GetParam() * 1.0e6);
  g.preview_next_frame({demand, demand * 4, 0.0, 1.0e9});
  const std::size_t idx = g.decide(make_ctx(opps, period), std::nullopt);
  const double t_at = common::time_for(demand, opps.at(idx).frequency);
  if (t_at <= period) {
    if (idx > 0) {
      EXPECT_GT(common::time_for(demand, opps.at(idx - 1).frequency), period);
    }
  } else {
    EXPECT_EQ(idx, opps.size() - 1);  // infeasible -> fastest
  }
}

INSTANTIATE_TEST_SUITE_P(Demands, OracleDemandSweep,
                         ::testing::Values(1.0, 8.0, 20.0, 36.0, 44.0, 60.0,
                                           79.9, 80.1, 120.0));

}  // namespace
}  // namespace prime::gov
