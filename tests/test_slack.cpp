/// \file test_slack.cpp
/// \brief Unit tests for the average slack-ratio monitor (eq. 5).
#include <gtest/gtest.h>

#include "rtm/slack.hpp"

namespace prime::rtm {
namespace {

TEST(SlackMonitor, RejectsBadAlpha) {
  EXPECT_THROW(SlackMonitor(SlackAveraging::kExponential, 0.0),
               std::invalid_argument);
  EXPECT_THROW(SlackMonitor(SlackAveraging::kExponential, 1.5),
               std::invalid_argument);
}

TEST(SlackMonitor, PerEpochSlackFormula) {
  SlackMonitor m(SlackAveraging::kCumulative);
  // (Tref - Ti - Tovh)/Tref = (40 - 30 - 2)/40 = 0.2
  const double L = m.observe(0.040, 0.030, 0.002);
  EXPECT_NEAR(L, 0.2, 1e-12);
  EXPECT_NEAR(m.last_slack(), 0.2, 1e-12);
}

TEST(SlackMonitor, CumulativeAveragesSinceStart) {
  SlackMonitor m(SlackAveraging::kCumulative);
  (void)m.observe(0.040, 0.020, 0.0);  // slack 0.5
  const double L = m.observe(0.040, 0.040, 0.0);  // slack 0.0
  EXPECT_NEAR(L, 0.25, 1e-12);
  EXPECT_EQ(m.epochs(), 2u);
}

TEST(SlackMonitor, ExponentialWeightsRecent) {
  SlackMonitor m(SlackAveraging::kExponential, 0.5);
  (void)m.observe(0.040, 0.020, 0.0);  // 0.5, seeds average
  const double L = m.observe(0.040, 0.040, 0.0);  // 0.0
  EXPECT_NEAR(L, 0.25, 1e-12);  // 0.5*0 + 0.5*0.5
  const double L2 = m.observe(0.040, 0.040, 0.0);
  EXPECT_NEAR(L2, 0.125, 1e-12);
}

TEST(SlackMonitor, DeltaTracksChange) {
  SlackMonitor m(SlackAveraging::kCumulative);
  (void)m.observe(0.040, 0.020, 0.0);  // avg 0.5
  EXPECT_NEAR(m.delta_slack(), 0.5, 1e-12);  // from 0
  (void)m.observe(0.040, 0.040, 0.0);        // avg 0.25
  EXPECT_NEAR(m.delta_slack(), -0.25, 1e-12);
}

TEST(SlackMonitor, NegativeSlackOnMiss) {
  SlackMonitor m;
  const double L = m.observe(0.040, 0.050, 0.0);
  EXPECT_LT(L, 0.0);
}

TEST(SlackMonitor, OverheadReducesSlack) {
  SlackMonitor a;
  SlackMonitor b;
  const double without = a.observe(0.040, 0.030, 0.0);
  const double with = b.observe(0.040, 0.030, 0.005);
  EXPECT_LT(with, without);
}

TEST(SlackMonitor, ZeroPeriodIgnored) {
  SlackMonitor m;
  const double L = m.observe(0.0, 0.030, 0.0);
  EXPECT_DOUBLE_EQ(L, 0.0);
  EXPECT_EQ(m.epochs(), 0u);
}

TEST(SlackMonitor, ResetRestarts) {
  SlackMonitor m(SlackAveraging::kCumulative);
  (void)m.observe(0.040, 0.020, 0.0);
  m.reset();
  EXPECT_EQ(m.epochs(), 0u);
  EXPECT_DOUBLE_EQ(m.average_slack(), 0.0);
  EXPECT_DOUBLE_EQ(m.delta_slack(), 0.0);
}

/// Property: both averaging modes converge to the same value under constant
/// per-epoch slack.
class SlackModeSweep : public ::testing::TestWithParam<SlackAveraging> {};

TEST_P(SlackModeSweep, ConstantInputConverges) {
  SlackMonitor m(GetParam(), 0.3);
  double L = 0.0;
  for (int i = 0; i < 200; ++i) L = m.observe(0.040, 0.028, 0.0);
  EXPECT_NEAR(L, 0.3, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Modes, SlackModeSweep,
                         ::testing::Values(SlackAveraging::kCumulative,
                                           SlackAveraging::kExponential));

}  // namespace
}  // namespace prime::rtm
