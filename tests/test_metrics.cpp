/// \file test_metrics.cpp
/// \brief Unit tests for normalised metrics and misprediction summaries.
#include <gtest/gtest.h>

#include "sim/metrics.hpp"

namespace prime::sim {
namespace {

RunResult make_run(double energy, std::vector<double> frame_times,
                   double period = 0.040) {
  RunResult r;
  r.governor = "test";
  for (std::size_t i = 0; i < frame_times.size(); ++i) {
    EpochRecord e;
    e.epoch = i;
    e.period = period;
    e.frame_time = frame_times[i];
    e.window = std::max(period, frame_times[i]);
    e.sensor_power = 2.0;
    e.slack = (period - frame_times[i]) / period;
    e.deadline_met = frame_times[i] <= period;
    r.accumulate(e);
  }
  r.total_energy = energy;  // override the per-epoch sum for the ratio tests
  return r;
}

TEST(NormalizeAgainst, EnergyRatio) {
  const RunResult run = make_run(120.0, {0.030, 0.030});
  const RunResult oracle = make_run(100.0, {0.038, 0.038});
  const NormalizedMetrics m = normalize_against(run, oracle);
  EXPECT_NEAR(m.normalized_energy, 1.2, 1e-12);
  EXPECT_NEAR(m.normalized_performance, 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(m.miss_rate, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_power, 2.0);
}

TEST(NormalizeAgainst, ZeroOracleEnergyGuarded) {
  const RunResult run = make_run(120.0, {0.030});
  const RunResult oracle = make_run(0.0, {0.038});
  EXPECT_DOUBLE_EQ(normalize_against(run, oracle).normalized_energy, 0.0);
}

TEST(NormalizeAgainst, MissRateCounted) {
  const RunResult run = make_run(1.0, {0.030, 0.050, 0.045, 0.035});
  const RunResult oracle = make_run(1.0, {0.038});
  EXPECT_DOUBLE_EQ(normalize_against(run, oracle).miss_rate, 0.5);
}

TEST(SummarizeMisprediction, WindowedAverages) {
  // 4 frames: errors 10 %, 10 %, 2 %, 2 %; split at 2.
  const std::vector<double> actual{100.0, 100.0, 100.0, 100.0};
  const std::vector<double> pred{110.0, 90.0, 102.0, 98.0};
  const MispredictionSummary s = summarize_misprediction(actual, pred, 2);
  EXPECT_NEAR(s.early_avg, 0.10, 1e-12);
  EXPECT_NEAR(s.late_avg, 0.02, 1e-12);
  EXPECT_NEAR(s.overall_avg, 0.06, 1e-12);
  EXPECT_NEAR(s.peak, 0.10, 1e-12);
}

TEST(SummarizeMisprediction, SkipsZeroActuals) {
  const MispredictionSummary s =
      summarize_misprediction({0.0, 100.0}, {50.0, 110.0}, 1);
  EXPECT_DOUBLE_EQ(s.early_avg, 0.0);
  EXPECT_NEAR(s.late_avg, 0.10, 1e-12);
}

TEST(SummarizeMisprediction, EmptyInputs) {
  const MispredictionSummary s = summarize_misprediction({}, {}, 10);
  EXPECT_DOUBLE_EQ(s.overall_avg, 0.0);
  EXPECT_DOUBLE_EQ(s.peak, 0.0);
}

}  // namespace
}  // namespace prime::sim
