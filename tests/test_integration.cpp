/// \file test_integration.cpp
/// \brief End-to-end shape tests: the paper's headline claims must hold on
///        the full pipeline (platform + workload + governors + engine).
///
/// These use shortened runs to stay fast; the bench binaries reproduce the
/// full-length numbers.
#include <gtest/gtest.h>

#include "gov/mcdvfs.hpp"
#include "gov/shen_rl.hpp"
#include "hw/platform.hpp"
#include "rtm/manycore.hpp"
#include "sim/convergence.hpp"
#include "sim/experiment.hpp"
#include "sim/telemetry.hpp"

namespace prime::sim {
namespace {

Comparison run_h264(const std::vector<std::string>& names,
                    std::size_t frames = 1200) {
  auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "h264";
  spec.fps = 25.0;
  spec.frames = frames;
  spec.seed = 42;
  const wl::Application app = make_application(spec, *platform);
  return compare_governors(*platform, app, names);
}

TEST(Integration, TableOneShape_ProposedBeatsBaselinesOnEnergy) {
  const Comparison cmp = run_h264({"ondemand", "mcdvfs", "rtm-manycore"});
  const double ondemand = cmp.rows[0].normalized_energy;
  const double mcdvfs = cmp.rows[1].normalized_energy;
  const double proposed = cmp.rows[2].normalized_energy;
  // Paper Table I ordering: proposed < mcdvfs, proposed < ondemand,
  // all above the Oracle (1.0).
  EXPECT_LT(proposed, mcdvfs);
  EXPECT_LT(proposed, ondemand);
  EXPECT_GT(proposed, 1.0);
  // Headline: double-digit relative saving vs ondemand (paper: up to 16 %).
  EXPECT_GT((ondemand - proposed) / ondemand, 0.05);
}

TEST(Integration, TableOneShape_ProposedClosestToRequiredPerformance) {
  const Comparison cmp = run_h264({"ondemand", "mcdvfs", "rtm-manycore"});
  const double ondemand = cmp.rows[0].normalized_performance;
  const double proposed = cmp.rows[2].normalized_performance;
  // Everyone over-performs (<1); the proposed RTM runs closest to 1.0.
  EXPECT_LT(ondemand, 1.0);
  EXPECT_LT(proposed, 1.0);
  EXPECT_GT(proposed, ondemand);
}

TEST(Integration, OracleIsTheLowerBound) {
  const Comparison cmp =
      run_h264({"performance", "ondemand", "conservative", "rtm-manycore"}, 800);
  for (const auto& row : cmp.rows) {
    EXPECT_GE(row.normalized_energy, 0.97) << row.governor;
  }
  EXPECT_LE(cmp.oracle_run.miss_rate(), 0.01);
}

TEST(Integration, TableTwoShape_EpdExploresLessThanUpd) {
  auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "mpeg4";
  spec.fps = 30.0;
  spec.frames = 900;
  spec.seed = 3;
  const wl::Application app = make_application(spec, *platform);

  gov::ShenRlGovernor upd;
  (void)run_simulation(*platform, app, upd);

  rtm::ManycoreRtmGovernor epd;
  (void)run_simulation(*platform, app, epd);

  // Paper Table II: the EPD cuts explorations roughly in half vs UPD [21].
  EXPECT_LT(epd.exploration_count() * 3 / 2, upd.exploration_count());
  EXPECT_GT(epd.exploration_count(), 10u);
}

TEST(Integration, TableThreeShape_SharedTableConvergesFaster) {
  auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "mpeg4";
  spec.fps = 32.0;  // Tref ~ 31 ms, the paper's ffmpeg setup
  spec.frames = 900;
  spec.seed = 4;
  const wl::Application app = make_application(spec, *platform);

  gov::MulticoreDvfsGovernor percore;
  (void)run_simulation(*platform, app, percore);

  rtm::ManycoreRtmGovernor shared;
  (void)run_simulation(*platform, app, shared);

  ASSERT_GT(percore.learning_complete_epoch(), 0u);
  ASSERT_GT(shared.learning_complete_epoch(), 0u);
  // Paper Table III: 205 vs 105 decision epochs (~2x).
  EXPECT_LT(shared.learning_complete_epoch() * 3 / 2,
            percore.learning_complete_epoch());
}

TEST(Integration, Fig3Shape_MispredictionShrinksAfterLearning) {
  auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "mpeg4";
  spec.fps = 24.0;
  spec.frames = 400;
  spec.seed = 7;
  const wl::Application app = make_application(spec, *platform);

  rtm::ManycoreRtmGovernor rtm;
  std::vector<double> actual;
  std::vector<double> predicted;
  CallbackSink probe([&](const EpochRecord& e, gov::Governor& g) {
    auto& r = dynamic_cast<rtm::RtmGovernor&>(g);
    actual.push_back(static_cast<double>(e.executed));
    predicted.push_back(static_cast<double>(r.predictor().prediction()));
  });
  RunOptions opt;
  opt.sinks = {&probe};
  (void)run_simulation(*platform, app, rtm, opt);

  // Align: prediction captured after epoch i is for epoch i+1.
  std::vector<double> aligned_actual(actual.begin() + 1, actual.end());
  std::vector<double> aligned_pred(predicted.begin(), predicted.end() - 1);
  const MispredictionSummary s =
      summarize_misprediction(aligned_actual, aligned_pred, 100);
  // Fig. 3's claim: single-digit average misprediction overall.
  EXPECT_LT(s.overall_avg, 0.12);
  EXPECT_GT(s.overall_avg, 0.0);
}

TEST(Integration, RequirementChangeIsTracked) {
  auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = "fft";
  spec.fps = 30.0;
  spec.frames = 600;
  wl::Application app = make_application(spec, *platform);
  app.add_requirement_change(300, 15.0);  // relax the deadline mid-run

  rtm::ManycoreRtmGovernor rtm;
  TraceSink trace;
  RunOptions opt;
  opt.sinks = {&trace};
  (void)run_simulation(*platform, app, rtm, opt);
  // After relaxing to 15 fps the governor should settle at lower frequency:
  // compare mean OPP around the change.
  const std::vector<EpochRecord>& records = trace.records();
  double before = 0.0;
  double after = 0.0;
  for (std::size_t i = 200; i < 300; ++i) before += static_cast<double>(records[i].opp_index);
  for (std::size_t i = 500; i < 600; ++i) after += static_cast<double>(records[i].opp_index);
  EXPECT_LT(after, before);
}

TEST(Integration, WholePipelineDeterministic) {
  const Comparison a = run_h264({"rtm-manycore"}, 400);
  const Comparison b = run_h264({"rtm-manycore"}, 400);
  EXPECT_DOUBLE_EQ(a.rows[0].normalized_energy, b.rows[0].normalized_energy);
  EXPECT_DOUBLE_EQ(a.rows[0].normalized_performance,
                   b.rows[0].normalized_performance);
}

/// Property sweep: the proposed RTM never misses more than a third of frames
/// on any of the paper's application classes at its stated rates.
class RtmWorkloadSweep
    : public ::testing::TestWithParam<std::pair<const char*, double>> {};

TEST_P(RtmWorkloadSweep, ReasonableMissRateAndEnergy) {
  const auto [workload, fps] = GetParam();
  auto platform = hw::Platform::odroid_xu3_a15();
  ExperimentSpec spec;
  spec.workload = workload;
  spec.fps = fps;
  spec.frames = 700;
  spec.seed = 11;
  const wl::Application app = make_application(spec, *platform);
  const Comparison cmp = compare_governors(*platform, app, {"rtm-manycore"});
  EXPECT_LT(cmp.rows[0].miss_rate, 0.34) << workload;
  EXPECT_LT(cmp.rows[0].normalized_energy, 1.6) << workload;
  EXPECT_GT(cmp.rows[0].normalized_energy, 0.95) << workload;
}

INSTANTIATE_TEST_SUITE_P(
    PaperWorkloads, RtmWorkloadSweep,
    ::testing::Values(std::make_pair("mpeg4", 30.0),
                      std::make_pair("h264", 15.0),
                      std::make_pair("fft", 32.0),
                      std::make_pair("blackscholes", 25.0),
                      std::make_pair("bodytrack", 25.0),
                      std::make_pair("radix", 25.0)));

}  // namespace
}  // namespace prime::sim
