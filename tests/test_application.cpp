/// \file test_application.cpp
/// \brief Unit tests for the periodic application model.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "wl/application.hpp"
#include "wl/fft.hpp"
#include "wl/frame_source.hpp"

namespace prime::wl {
namespace {

Application make_app(double fps = 30.0, std::size_t threads = 4,
                     double imbalance = 0.1) {
  WorkloadTrace trace = FftTraceGenerator::paper_fft().generate(100, 1);
  return Application("app", std::move(trace), fps, threads, imbalance);
}

TEST(Application, RejectsNonPositiveFps) {
  WorkloadTrace t = FftTraceGenerator::paper_fft().generate(10, 1);
  EXPECT_THROW(Application("x", std::move(t), 0.0), std::invalid_argument);
}

TEST(Application, DeadlineIsInverseFps) {
  const Application app = make_app(25.0);
  EXPECT_NEAR(app.deadline_at(0), 0.040, 1e-12);
  EXPECT_NEAR(app.requirement_at(50).fps, 25.0, 1e-12);
}

TEST(Application, RequirementChangesApplyFromFrame) {
  Application app = make_app(30.0);
  app.add_requirement_change(50, 15.0);
  EXPECT_NEAR(app.requirement_at(49).fps, 30.0, 1e-12);
  EXPECT_NEAR(app.requirement_at(50).fps, 15.0, 1e-12);
  EXPECT_NEAR(app.requirement_at(99).fps, 15.0, 1e-12);
}

TEST(Application, RequirementChangesSortRegardlessOfInsertOrder) {
  Application app = make_app(30.0);
  app.add_requirement_change(80, 60.0);
  app.add_requirement_change(40, 15.0);
  EXPECT_NEAR(app.requirement_at(45).fps, 15.0, 1e-12);
  EXPECT_NEAR(app.requirement_at(85).fps, 60.0, 1e-12);
}

TEST(Application, RequirementChangeRejectsBadFps) {
  Application app = make_app();
  EXPECT_THROW(app.add_requirement_change(10, -1.0), std::invalid_argument);
}

TEST(Application, RequirementSameFrameLastAddedWins) {
  // Regression: two changes at the same frame used to resolve arbitrarily
  // (unstable sort over equal keys); the last one added must win.
  Application app = make_app(30.0);
  app.add_requirement_change(50, 15.0);
  app.add_requirement_change(50, 60.0);
  EXPECT_NEAR(app.requirement_at(50).fps, 60.0, 1e-12);
  // Replacement works regardless of other breakpoints around it.
  app.add_requirement_change(20, 10.0);
  app.add_requirement_change(80, 40.0);
  app.add_requirement_change(50, 24.0);
  EXPECT_NEAR(app.requirement_at(30).fps, 10.0, 1e-12);
  EXPECT_NEAR(app.requirement_at(50).fps, 24.0, 1e-12);
  EXPECT_NEAR(app.requirement_at(79).fps, 24.0, 1e-12);
  EXPECT_NEAR(app.requirement_at(80).fps, 40.0, 1e-12);
}

TEST(Application, ReplacingFrameZeroOverridesInitialFps) {
  Application app = make_app(30.0);
  app.add_requirement_change(0, 45.0);
  EXPECT_NEAR(app.requirement_at(0).fps, 45.0, 1e-12);
}

TEST(Application, CoreWorkConservesDemand) {
  const Application app = make_app(30.0, 4, 0.2);
  for (std::size_t frame = 0; frame < 10; ++frame) {
    const auto work = app.core_work(frame, 4);
    const common::Cycles total =
        std::accumulate(work.begin(), work.end(), common::Cycles{0});
    // Integer rounding may lose at most `threads` cycles.
    EXPECT_NEAR(static_cast<double>(total),
                static_cast<double>(app.frame_cycles(frame)), 4.0);
  }
}

TEST(Application, CoreWorkUsesOnlyAvailableCores) {
  const Application app = make_app(30.0, 8, 0.0);
  const auto work = app.core_work(0, 2);
  ASSERT_EQ(work.size(), 2u);
  EXPECT_GT(work[0], 0u);
  EXPECT_GT(work[1], 0u);
}

TEST(Application, FewerThreadsThanCoresLeavesIdleCores) {
  const Application app = make_app(30.0, 2, 0.0);
  const auto work = app.core_work(0, 4);
  ASSERT_EQ(work.size(), 4u);
  EXPECT_GT(work[0], 0u);
  EXPECT_GT(work[1], 0u);
  EXPECT_EQ(work[2], 0u);
  EXPECT_EQ(work[3], 0u);
}

TEST(Application, ZeroImbalanceSplitsEvenly) {
  const Application app = make_app(30.0, 4, 0.0);
  const auto work = app.core_work(3, 4);
  for (std::size_t j = 1; j < 4; ++j) {
    EXPECT_NEAR(static_cast<double>(work[j]), static_cast<double>(work[0]),
                2.0);
  }
}

TEST(Application, ImbalanceBounded) {
  const double imb = 0.3;
  const Application app = make_app(30.0, 4, imb);
  for (std::size_t frame = 0; frame < 20; ++frame) {
    const auto work = app.core_work(frame, 4);
    const double even = static_cast<double>(app.frame_cycles(frame)) / 4.0;
    for (const auto w : work) {
      // Normalised shares stay within ~2x the nominal imbalance envelope.
      EXPECT_LT(std::abs(static_cast<double>(w) - even) / even, 2.5 * imb);
    }
  }
}

TEST(Application, CoreWorkDeterministicAndOrderIndependent) {
  const Application app = make_app(30.0, 4, 0.15);
  const auto later = app.core_work(7, 4);
  const auto earlier = app.core_work(3, 4);
  const auto later_again = app.core_work(7, 4);
  EXPECT_EQ(later, later_again);
  (void)earlier;
}

TEST(Application, ZeroCoresYieldsEmpty) {
  const Application app = make_app();
  EXPECT_TRUE(app.core_work(0, 0).empty());
}

// --- Streaming mode ----------------------------------------------------------

Application make_streaming_app(std::uint64_t seed = 1, double fps = 30.0,
                               std::size_t threads = 4,
                               double imbalance = 0.1) {
  auto generator =
      std::make_shared<FftTraceGenerator>(FftTraceGenerator::paper_fft());
  return Application(
      "app", [generator, seed] { return generator->stream(seed); }, fps,
      threads, imbalance);
}

TEST(StreamingApplication, FlagsAndEmptyTrace) {
  const Application app = make_streaming_app();
  EXPECT_TRUE(app.streaming());
  EXPECT_EQ(app.frame_count(), 0u);  // unbounded: no trace length
  EXPECT_TRUE(app.trace().empty());
  EXPECT_FALSE(make_app().streaming());
}

TEST(StreamingApplication, RejectsEmptyFactory) {
  EXPECT_THROW(Application("x", FrameSourceFactory{}, 30.0),
               std::invalid_argument);
}

TEST(StreamingApplication, MatchesTraceReplayFrameForFrame) {
  // The equivalence guarantee at the application layer: a streaming app and
  // a trace app built from the same (generator, seed) split identical work.
  const Application streamed = make_streaming_app(1, 30.0, 4, 0.1);
  const Application replayed = make_app(30.0, 4, 0.1);  // generate(100, 1)
  for (std::size_t frame = 0; frame < 100; ++frame) {
    EXPECT_EQ(streamed.frame_cycles(frame), replayed.frame_cycles(frame));
    EXPECT_EQ(streamed.core_work(frame, 4), replayed.core_work(frame, 4));
  }
}

TEST(StreamingApplication, RepeatedAndSkippingAccess) {
  const Application app = make_streaming_app();
  const common::Cycles c3 = app.frame_cycles(3);
  EXPECT_EQ(app.frame_cycles(3), c3);  // repeated access hits the cache
  const common::Cycles c10 = app.frame_cycles(10);  // skip forward
  EXPECT_GT(c10, 0u);
  EXPECT_EQ(app.frame_cycles(10), c10);
}

TEST(StreamingApplication, RewindReplaysIdentically) {
  const Application app = make_streaming_app();
  std::vector<common::Cycles> first;
  for (std::size_t i = 0; i < 20; ++i) first.push_back(app.frame_cycles(i));
  // Accessing a lower index re-creates the deterministic source.
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(app.frame_cycles(i), first[i]) << "frame " << i;
  }
}

TEST(StreamingApplication, CopyGetsIndependentFreshCursor) {
  const Application app = make_streaming_app();
  std::vector<common::Cycles> expected;
  for (std::size_t i = 0; i < 10; ++i) expected.push_back(app.frame_cycles(i));
  // Copy taken mid-stream: same calibration/factory, fresh cursor.
  const Application copy = app;
  EXPECT_TRUE(copy.streaming());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(copy.frame_cycles(i), expected[i]) << "frame " << i;
  }
  // The original's cursor is unaffected by the copy's streaming.
  EXPECT_EQ(app.frame_cycles(10), copy.frame_cycles(10));
  // Copy assignment resets the target's cursor too.
  Application assigned = make_streaming_app(99);
  (void)assigned.frame_cycles(7);
  assigned = app;
  EXPECT_EQ(assigned.frame_cycles(0), expected[0]);
}

TEST(StreamingApplication, BoundedSourceExhaustionThrows) {
  const WorkloadTrace trace = FftTraceGenerator::paper_fft().generate(5, 1);
  const Application app(
      "bounded", [trace] { return std::make_unique<TraceFrameSource>(trace); },
      30.0);
  EXPECT_GT(app.frame_cycles(4), 0u);
  EXPECT_THROW((void)app.frame_cycles(5), std::out_of_range);
}

}  // namespace
}  // namespace prime::wl
