/// \file test_application.cpp
/// \brief Unit tests for the periodic application model.
#include <gtest/gtest.h>

#include <numeric>

#include "wl/application.hpp"
#include "wl/fft.hpp"

namespace prime::wl {
namespace {

Application make_app(double fps = 30.0, std::size_t threads = 4,
                     double imbalance = 0.1) {
  WorkloadTrace trace = FftTraceGenerator::paper_fft().generate(100, 1);
  return Application("app", std::move(trace), fps, threads, imbalance);
}

TEST(Application, RejectsNonPositiveFps) {
  WorkloadTrace t = FftTraceGenerator::paper_fft().generate(10, 1);
  EXPECT_THROW(Application("x", std::move(t), 0.0), std::invalid_argument);
}

TEST(Application, DeadlineIsInverseFps) {
  const Application app = make_app(25.0);
  EXPECT_NEAR(app.deadline_at(0), 0.040, 1e-12);
  EXPECT_NEAR(app.requirement_at(50).fps, 25.0, 1e-12);
}

TEST(Application, RequirementChangesApplyFromFrame) {
  Application app = make_app(30.0);
  app.add_requirement_change(50, 15.0);
  EXPECT_NEAR(app.requirement_at(49).fps, 30.0, 1e-12);
  EXPECT_NEAR(app.requirement_at(50).fps, 15.0, 1e-12);
  EXPECT_NEAR(app.requirement_at(99).fps, 15.0, 1e-12);
}

TEST(Application, RequirementChangesSortRegardlessOfInsertOrder) {
  Application app = make_app(30.0);
  app.add_requirement_change(80, 60.0);
  app.add_requirement_change(40, 15.0);
  EXPECT_NEAR(app.requirement_at(45).fps, 15.0, 1e-12);
  EXPECT_NEAR(app.requirement_at(85).fps, 60.0, 1e-12);
}

TEST(Application, RequirementChangeRejectsBadFps) {
  Application app = make_app();
  EXPECT_THROW(app.add_requirement_change(10, -1.0), std::invalid_argument);
}

TEST(Application, CoreWorkConservesDemand) {
  const Application app = make_app(30.0, 4, 0.2);
  for (std::size_t frame = 0; frame < 10; ++frame) {
    const auto work = app.core_work(frame, 4);
    const common::Cycles total =
        std::accumulate(work.begin(), work.end(), common::Cycles{0});
    // Integer rounding may lose at most `threads` cycles.
    EXPECT_NEAR(static_cast<double>(total),
                static_cast<double>(app.frame_cycles(frame)), 4.0);
  }
}

TEST(Application, CoreWorkUsesOnlyAvailableCores) {
  const Application app = make_app(30.0, 8, 0.0);
  const auto work = app.core_work(0, 2);
  ASSERT_EQ(work.size(), 2u);
  EXPECT_GT(work[0], 0u);
  EXPECT_GT(work[1], 0u);
}

TEST(Application, FewerThreadsThanCoresLeavesIdleCores) {
  const Application app = make_app(30.0, 2, 0.0);
  const auto work = app.core_work(0, 4);
  ASSERT_EQ(work.size(), 4u);
  EXPECT_GT(work[0], 0u);
  EXPECT_GT(work[1], 0u);
  EXPECT_EQ(work[2], 0u);
  EXPECT_EQ(work[3], 0u);
}

TEST(Application, ZeroImbalanceSplitsEvenly) {
  const Application app = make_app(30.0, 4, 0.0);
  const auto work = app.core_work(3, 4);
  for (std::size_t j = 1; j < 4; ++j) {
    EXPECT_NEAR(static_cast<double>(work[j]), static_cast<double>(work[0]),
                2.0);
  }
}

TEST(Application, ImbalanceBounded) {
  const double imb = 0.3;
  const Application app = make_app(30.0, 4, imb);
  for (std::size_t frame = 0; frame < 20; ++frame) {
    const auto work = app.core_work(frame, 4);
    const double even = static_cast<double>(app.frame_cycles(frame)) / 4.0;
    for (const auto w : work) {
      // Normalised shares stay within ~2x the nominal imbalance envelope.
      EXPECT_LT(std::abs(static_cast<double>(w) - even) / even, 2.5 * imb);
    }
  }
}

TEST(Application, CoreWorkDeterministicAndOrderIndependent) {
  const Application app = make_app(30.0, 4, 0.15);
  const auto later = app.core_work(7, 4);
  const auto earlier = app.core_work(3, 4);
  const auto later_again = app.core_work(7, 4);
  EXPECT_EQ(later, later_again);
  (void)earlier;
}

TEST(Application, ZeroCoresYieldsEmpty) {
  const Application app = make_app();
  EXPECT_TRUE(app.core_work(0, 0).empty());
}

}  // namespace
}  // namespace prime::wl
