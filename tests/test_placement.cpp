/// \file test_placement.cpp
/// \brief Multi-cluster platforms and the placement layer: partition-validity
///        property tests over cores x domains x policy, policy structure
///        checks, the single-domain bit-identity differential per registered
///        governor, and the per-domain decision contract.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/hash.hpp"
#include "common/registry.hpp"
#include "hw/platform.hpp"
#include "sim/builder.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/placement.hpp"

namespace prime::sim {
namespace {

std::unique_ptr<hw::Platform> make_board(std::size_t clusters,
                                         std::size_t cores_each = 4) {
  common::Config cfg;
  cfg.set_int("hw.clusters", static_cast<long long>(clusters));
  cfg.set_int("hw.cores", static_cast<long long>(cores_each));
  return hw::Platform::from_config(cfg);
}

wl::Application make_test_app(const hw::Platform& platform,
                              std::size_t frames, double fps = 30.0) {
  ExperimentSpec spec;
  spec.workload = "h264";
  spec.fps = fps;
  spec.frames = frames;
  spec.seed = 7;
  return make_application(spec, platform);
}

void expect_results_bitequal(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.epoch_count, b.epoch_count);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.total_energy),
            std::bit_cast<std::uint64_t>(b.total_energy));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.measured_energy),
            std::bit_cast<std::uint64_t>(b.measured_energy));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.total_time),
            std::bit_cast<std::uint64_t>(b.total_time));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.performance_sum),
            std::bit_cast<std::uint64_t>(b.performance_sum));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.power_sum),
            std::bit_cast<std::uint64_t>(b.power_sum));
}

// --- Partition-validity properties ------------------------------------------

TEST(Placement, ExactCoverOverCoresDomainsPolicyGrid) {
  // Every registered policy, on every topology of the grid, under several
  // weight shapes, must produce an exact cover: in-bounds, no overlap, full
  // coverage. make_placement validates internally (throwing std::logic_error
  // on violation); the explicit bijection re-check below keeps the property
  // pinned even if that internal gate is ever weakened.
  for (const std::string& policy : placement_names()) {
    for (std::size_t domains = 1; domains <= 4; ++domains) {
      for (std::size_t cores = 1; cores <= 4; ++cores) {
        const std::vector<std::size_t> topo(domains, cores);
        const std::size_t slots = domains * cores;
        std::vector<std::vector<double>> weight_shapes;
        weight_shapes.push_back({});                        // no estimate
        weight_shapes.emplace_back(slots, 1.0);             // uniform
        {
          std::vector<double> skew(slots, 0.0);             // loaded prefix
          for (std::size_t j = 0; j < (slots + 1) / 2; ++j) {
            skew[j] = static_cast<double>(slots - j);
          }
          weight_shapes.push_back(std::move(skew));
        }
        for (const auto& weights : weight_shapes) {
          SCOPED_TRACE(policy + " " + std::to_string(domains) + "x" +
                       std::to_string(cores) + " weights=" +
                       std::to_string(weights.size()));
          const Placement p = make_placement(policy, topo, weights);
          ASSERT_EQ(p.slots(), slots);
          std::vector<std::vector<bool>> hit(domains,
                                             std::vector<bool>(cores, false));
          for (std::size_t j = 0; j < slots; ++j) {
            ASSERT_LT(p.slot_domain[j], domains);
            ASSERT_LT(p.slot_local[j], cores);
            EXPECT_FALSE(hit[p.slot_domain[j]][p.slot_local[j]])
                << "slot " << j << " overlaps";
            hit[p.slot_domain[j]][p.slot_local[j]] = true;
          }
          for (std::size_t d = 0; d < domains; ++d) {
            for (std::size_t l = 0; l < cores; ++l) {
              EXPECT_TRUE(hit[d][l]) << "core (" << d << "," << l
                                     << ") uncovered";
            }
          }
        }
      }
    }
  }
}

TEST(Placement, ValidatorRejectsInvalidPartitions) {
  const std::vector<std::size_t> topo = {2, 2};
  Placement p;
  p.policy = "bad";
  // Short vectors.
  p.slot_domain = {0, 0, 1};
  p.slot_local = {0, 1, 0};
  EXPECT_THROW(validate_placement(p, topo), std::logic_error);
  // Out-of-bounds domain.
  p.slot_domain = {0, 0, 1, 5};
  p.slot_local = {0, 1, 0, 1};
  EXPECT_THROW(validate_placement(p, topo), std::logic_error);
  // Out-of-bounds local core.
  p.slot_domain = {0, 0, 1, 1};
  p.slot_local = {0, 3, 0, 1};
  EXPECT_THROW(validate_placement(p, topo), std::logic_error);
  // Overlap (core (0,0) claimed twice, so (0,1) is also uncovered).
  p.slot_domain = {0, 0, 1, 1};
  p.slot_local = {0, 0, 0, 1};
  EXPECT_THROW(validate_placement(p, topo), std::logic_error);
  // A valid identity mapping passes.
  p.slot_domain = {0, 0, 1, 1};
  p.slot_local = {0, 1, 0, 1};
  EXPECT_NO_THROW(validate_placement(p, topo));
}

TEST(Placement, UnknownPolicyThrowsWithSuggestions) {
  EXPECT_THROW((void)make_placement("packd", {2, 2}),
               common::UnknownNameError);
}

// --- Policy structure --------------------------------------------------------

TEST(Placement, PackedFillsDomainsInOrder) {
  const Placement p = make_placement("packed", {2, 3});
  EXPECT_EQ(p.slot_domain, (std::vector<std::size_t>{0, 0, 1, 1, 1}));
  EXPECT_EQ(p.slot_local, (std::vector<std::size_t>{0, 1, 0, 1, 2}));
}

TEST(Placement, SpreadDealsRoundRobin) {
  const Placement p = make_placement("spread", {2, 2});
  EXPECT_EQ(p.slot_domain, (std::vector<std::size_t>{0, 1, 0, 1}));
  EXPECT_EQ(p.slot_local, (std::vector<std::size_t>{0, 0, 1, 1}));
  // Uneven topology: full domains drop out of later rounds.
  const Placement q = make_placement("spread", {1, 3});
  EXPECT_EQ(q.slot_domain, (std::vector<std::size_t>{0, 1, 1, 1}));
  EXPECT_EQ(q.slot_local, (std::vector<std::size_t>{0, 0, 1, 2}));
}

TEST(Placement, RectBalancesLoadedPrefixAcrossDomains) {
  // Two loaded slots (weights 3, 1) on a 2x2 board: splitting them one per
  // domain (max load 3) beats packing both on domain 0 (load 4). Idle slots
  // backfill the remaining capacity in domain order.
  const Placement p = make_placement("rect", {2, 2}, {3.0, 1.0, 0.0, 0.0});
  EXPECT_EQ(p.slot_domain, (std::vector<std::size_t>{0, 1, 0, 1}));
  EXPECT_EQ(p.slot_local, (std::vector<std::size_t>{0, 0, 1, 1}));
}

TEST(Placement, RectWithoutEstimateDegeneratesToPacked) {
  const Placement rect = make_placement("rect", {2, 2});
  const Placement packed = make_placement("packed", {2, 2});
  EXPECT_EQ(rect.slot_domain, packed.slot_domain);
  EXPECT_EQ(rect.slot_local, packed.slot_local);
}

// --- Platform shape ----------------------------------------------------------

TEST(Placement, SingleDomainFingerprintKeepsHistoricalRecipe) {
  // The pre-multi-cluster fingerprint hashed total cores + the OPP table and
  // nothing else; single-domain boards must keep producing exactly that value
  // so existing .ckpt/.qpol artifacts stay valid.
  const auto platform = hw::Platform::odroid_xu3_a15();
  common::Fnv1a64 h;
  h.u64(platform->total_cores());
  h.u64(platform->opp_table().size());
  for (const hw::Opp& opp : platform->opp_table().points()) {
    h.f64(opp.frequency);
    h.f64(opp.voltage);
  }
  EXPECT_EQ(platform->shape_fingerprint(), h.value());
}

TEST(Placement, DomainStructureDistinguishesFingerprints) {
  // 2 domains x 4 cores and 1 domain x 8 cores share the total core count and
  // OPP table but must not share learned-state keys.
  const auto two_by_four = make_board(2, 4);
  const auto one_by_eight = make_board(1, 8);
  EXPECT_EQ(two_by_four->total_cores(), one_by_eight->total_cores());
  EXPECT_NE(two_by_four->shape_fingerprint(),
            one_by_eight->shape_fingerprint());
}

TEST(Placement, PlatformDomainAccessors) {
  const auto board = make_board(3, 2);
  EXPECT_EQ(board->domain_count(), 3u);
  EXPECT_EQ(board->total_cores(), 6u);
  EXPECT_EQ(board->domain_of_core(0), 0u);
  EXPECT_EQ(board->domain_of_core(3), 1u);
  EXPECT_EQ(board->domain_of_core(5), 2u);
  EXPECT_EQ(board->local_of_core(3), 1u);
  EXPECT_EQ(board->local_of_core(4), 0u);
  common::Config bad;
  bad.set_int("hw.clusters", 0);
  EXPECT_THROW((void)hw::Platform::from_config(bad), std::invalid_argument);
}

// --- Per-domain decision contract -------------------------------------------

/// Probe governor recording every DecisionContext it sees.
class DomainProbeGovernor : public gov::Governor {
 public:
  std::string name() const override { return "domain-probe"; }
  std::size_t decide(const gov::DecisionContext& ctx,
                     const std::optional<gov::EpochObservation>& last) override {
    seen_domains.push_back(ctx.domain);
    seen_domain_counts.push_back(ctx.domains);
    seen_cores.push_back(ctx.cores);
    observed_power.push_back(last ? last->avg_power : -1.0);
    return ctx.opps->size() / 2;
  }
  void reset() override {}
  std::vector<std::size_t> seen_domains;
  std::vector<std::size_t> seen_domain_counts;
  std::vector<std::size_t> seen_cores;
  std::vector<double> observed_power;
};

TEST(Placement, EngineDecidesOncePerDomainPerEpoch) {
  const auto board = make_board(3, 2);
  const wl::Application app = make_test_app(*board, 5);
  DomainProbeGovernor probe;
  const RunResult r = run_simulation(*board, app, probe);
  EXPECT_EQ(r.epoch_count, 5u);
  ASSERT_EQ(probe.seen_domains.size(), 15u);  // 3 domains x 5 epochs
  for (std::size_t i = 0; i < probe.seen_domains.size(); ++i) {
    EXPECT_EQ(probe.seen_domains[i], i % 3);
    EXPECT_EQ(probe.seen_domain_counts[i], 3u);
    EXPECT_EQ(probe.seen_cores[i], 2u);  // per-domain core count, not total
  }
  // From the second epoch on, every domain feeds back its own observation.
  for (std::size_t i = 3; i < probe.observed_power.size(); ++i) {
    EXPECT_GE(probe.observed_power[i], 0.0) << "decision " << i;
  }
}

TEST(Placement, SingleDomainContextStaysHistorical) {
  const auto board = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_test_app(*board, 4);
  DomainProbeGovernor probe;
  (void)run_simulation(*board, app, probe);
  ASSERT_EQ(probe.seen_domains.size(), 4u);
  for (std::size_t i = 0; i < probe.seen_domains.size(); ++i) {
    EXPECT_EQ(probe.seen_domains[i], 0u);
    EXPECT_EQ(probe.seen_domain_counts[i], 1u);
    EXPECT_EQ(probe.seen_cores[i], 4u);
  }
}

// --- Single-domain bit-identity & multi-domain determinism -------------------

TEST(Placement, SingleDomainRunsIgnorePlacementBitIdentically) {
  // On a one-domain board every placement policy is the identity mapping, so
  // RunOptions::placement must not perturb a single bit of the result — per
  // registered governor, across the batched and scalar paths.
  const auto calibration = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_test_app(*calibration, 120);
  for (const std::string& name : governor_names()) {
    SCOPED_TRACE(name);
    std::vector<RunResult> runs;
    for (const std::string& placement : {"packed", "spread", "rect"}) {
      for (const std::size_t block : {std::size_t{0}, std::size_t{64}}) {
        // Fresh platform per run: the power sensor's noise stream position is
        // process state, not reset() state.
        const auto board = hw::Platform::odroid_xu3_a15();
        const auto governor = make_governor(name, 42);
        RunOptions opt;
        opt.placement = placement;
        opt.block_frames = block;
        runs.push_back(run_simulation(*board, app, *governor, opt));
      }
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
      expect_results_bitequal(runs.front(), runs[i]);
    }
  }
}

TEST(Placement, MultiDomainRunsAreDeterministic) {
  for (const std::string& name : governor_names()) {
    SCOPED_TRACE(name);
    const auto run_once = [&name](const std::string& placement) {
      const auto board = make_board(2, 4);
      const wl::Application app = make_test_app(*board, 150);
      const auto governor = make_governor(name, 42);
      RunOptions opt;
      opt.placement = placement;
      return run_simulation(*board, app, *governor, opt);
    };
    expect_results_bitequal(run_once("packed"), run_once("packed"));
    expect_results_bitequal(run_once("spread"), run_once("spread"));
  }
}

TEST(Placement, MultiDomainRunExecutesAllWork) {
  const auto packed_board = make_board(2, 4);
  const auto single_board = make_board(1, 8);
  const wl::Application app = make_test_app(*packed_board, 200);
  const auto g1 = make_governor("ondemand", 1);
  const auto g2 = make_governor("ondemand", 1);
  const RunResult multi = run_simulation(*packed_board, app, *g1);
  const RunResult single = run_simulation(*single_board, app, *g2);
  EXPECT_EQ(multi.epoch_count, single.epoch_count);
  EXPECT_GT(multi.total_energy, 0.0);
  EXPECT_GT(multi.total_time, 0.0);
}

TEST(Placement, MultiDomainCheckpointingRejected) {
  const auto board = make_board(2, 4);
  const wl::Application app = make_test_app(*board, 50);
  const auto governor = make_governor("ondemand", 1);
  RunOptions with_ckpt;
  with_ckpt.checkpoint_path = testing::TempDir() + "md.ckpt";
  EXPECT_THROW((void)run_simulation(*board, app, *governor, with_ckpt),
               std::invalid_argument);
  RunOptions with_resume;
  with_resume.resume_from = testing::TempDir() + "md.ckpt";
  EXPECT_THROW((void)run_simulation(*board, app, *governor, with_resume),
               std::invalid_argument);
}

// --- Builder axis ------------------------------------------------------------

TEST(Placement, BuilderSweepsDomainsTimesPlacement) {
  const SweepResult sweep = ExperimentBuilder()
                                .clusters(2)
                                .cores(2)
                                .workload("h264")
                                .fps(30.0)
                                .governors({"ondemand", "rtm"})
                                .placements({"packed", "spread"})
                                .frames(80)
                                .parallelism(2)
                                .run();
  // 1 workload x 1 fps x 2 placements x 2 governors, one cell per placement.
  ASSERT_EQ(sweep.results.size(), 4u);
  ASSERT_EQ(sweep.oracle_runs.size(), 2u);
  for (const auto& r : sweep.results) {
    EXPECT_EQ(r.run.epoch_count, 80u);
    EXPECT_GT(r.run.total_energy, 0.0);
    EXPECT_GT(r.row.normalized_energy, 0.0);
  }
  EXPECT_EQ(sweep.results[0].scenario.placement, "packed");
  EXPECT_EQ(sweep.results[2].scenario.placement, "spread");
  EXPECT_NE(sweep.results[0].scenario.cell, sweep.results[2].scenario.cell);
}

TEST(Placement, BuilderPlacementAxisIsByteTransparentOnSingleDomain) {
  const auto run_sweep = [](bool with_axis) {
    ExperimentBuilder b;
    b.workload("h264").fps(30.0).governor("rtm").frames(60).parallelism(1);
    if (with_axis) b.placement("packed");
    return b.run();
  };
  const SweepResult base = run_sweep(false);
  const SweepResult axis = run_sweep(true);
  ASSERT_EQ(base.results.size(), axis.results.size());
  expect_results_bitequal(base.results[0].run, axis.results[0].run);
}

}  // namespace
}  // namespace prime::sim
