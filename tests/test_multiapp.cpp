/// \file test_multiapp.cpp
/// \brief Tests for concurrent multi-application execution (future work).
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/multiapp.hpp"
#include "sim/telemetry.hpp"

namespace prime::sim {
namespace {

wl::Application make_app(const char* workload, double fps, std::size_t frames,
                         std::uint64_t seed, const hw::Platform& platform,
                         double utilisation = 0.20) {
  ExperimentSpec spec;
  spec.workload = workload;
  spec.fps = fps;
  spec.frames = frames;
  spec.seed = seed;
  spec.threads = 2;  // each app gets a 2-core partition
  spec.target_utilisation = utilisation;
  return make_application(spec, platform);
}

TEST(MultiApp, ValidatesInputs) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application a = make_app("mpeg4", 25.0, 50, 1, *platform);
  const wl::Application b = make_app("fft", 25.0, 50, 2, *platform);

  std::vector<std::unique_ptr<gov::Governor>> governors;
  governors.push_back(make_governor("rtm"));

  // No placements.
  EXPECT_THROW(run_multi_simulation(*platform, {}, governors),
               std::invalid_argument);
  // Governor count mismatch.
  std::vector<AppPlacement> two = {{&a, {0, 1}}, {&b, {2, 3}}};
  EXPECT_THROW(run_multi_simulation(*platform, two, governors),
               std::invalid_argument);
  governors.push_back(make_governor("rtm"));
  // Overlapping cores.
  std::vector<AppPlacement> overlap = {{&a, {0, 1}}, {&b, {1, 2}}};
  EXPECT_THROW(run_multi_simulation(*platform, overlap, governors),
               std::invalid_argument);
  // Core out of range.
  std::vector<AppPlacement> oob = {{&a, {0, 1}}, {&b, {2, 9}}};
  EXPECT_THROW(run_multi_simulation(*platform, oob, governors),
               std::invalid_argument);
}

TEST(MultiApp, MismatchedRatesRejected) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application a = make_app("mpeg4", 25.0, 50, 1, *platform);
  const wl::Application b = make_app("fft", 30.0, 50, 2, *platform);
  std::vector<std::unique_ptr<gov::Governor>> governors;
  governors.push_back(make_governor("rtm"));
  governors.push_back(make_governor("rtm"));
  std::vector<AppPlacement> placements = {{&a, {0, 1}}, {&b, {2, 3}}};
  EXPECT_THROW(run_multi_simulation(*platform, placements, governors),
               std::invalid_argument);
}

// Regression: the equal-rate check used to sample only frame 0, so an
// add_requirement_change forking the rates mid-run slipped past validation
// and silently mis-cadenced every epoch after the divergent breakpoint.
TEST(MultiApp, MidRunRateForkRejected) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application a = make_app("mpeg4", 25.0, 50, 1, *platform);
  wl::Application b = make_app("fft", 25.0, 50, 2, *platform);
  b.add_requirement_change(20, 30.0);  // same rate at frame 0, forks at 20
  std::vector<std::unique_ptr<gov::Governor>> governors;
  governors.push_back(make_governor("rtm"));
  governors.push_back(make_governor("rtm"));
  std::vector<AppPlacement> placements = {{&a, {0, 1}}, {&b, {2, 3}}};
  EXPECT_THROW(run_multi_simulation(*platform, placements, governors),
               std::invalid_argument);
}

// Schedules that differ in representation but agree at every frame are fine:
// both apps switch 25 -> 30 at frame 20, one of them through a redundant
// extra breakpoint.
TEST(MultiApp, EquivalentSchedulesAccepted) {
  auto platform = hw::Platform::odroid_xu3_a15();
  wl::Application a = make_app("mpeg4", 25.0, 50, 1, *platform);
  wl::Application b = make_app("fft", 25.0, 50, 2, *platform);
  a.add_requirement_change(20, 30.0);
  b.add_requirement_change(10, 25.0);  // redundant: rate unchanged
  b.add_requirement_change(20, 30.0);
  std::vector<std::unique_ptr<gov::Governor>> governors;
  governors.push_back(make_governor("rtm", 11));
  governors.push_back(make_governor("rtm", 22));
  std::vector<AppPlacement> placements = {{&a, {0, 1}}, {&b, {2, 3}}};
  const MultiAppResult r =
      run_multi_simulation(*platform, placements, governors);
  EXPECT_EQ(r.per_app[0].epoch_count, 50u);
}

TEST(MultiApp, TwoAppsRunToCompletion) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application a = make_app("mpeg4", 25.0, 300, 1, *platform);
  const wl::Application b = make_app("fft", 25.0, 300, 2, *platform);
  std::vector<std::unique_ptr<gov::Governor>> governors;
  governors.push_back(make_governor("rtm", 11));
  governors.push_back(make_governor("rtm", 22));
  std::vector<AppPlacement> placements = {{&a, {0, 1}}, {&b, {2, 3}}};

  const MultiAppResult r =
      run_multi_simulation(*platform, placements, governors);
  ASSERT_EQ(r.per_app.size(), 2u);
  EXPECT_EQ(r.per_app[0].epoch_count, 300u);
  EXPECT_EQ(r.per_app[1].epoch_count, 300u);
  EXPECT_GT(r.total_energy, 0.0);
  // Per-app energy attribution sums to the cluster total.
  EXPECT_NEAR(r.per_app[0].total_energy + r.per_app[1].total_energy,
              r.total_energy, r.total_energy * 1e-6);
}

TEST(MultiApp, BothAppsHoldTheirRequirements) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application a = make_app("mpeg4", 25.0, 500, 1, *platform);
  const wl::Application b = make_app("fft", 25.0, 500, 2, *platform);
  std::vector<std::unique_ptr<gov::Governor>> governors;
  governors.push_back(make_governor("rtm", 11));
  governors.push_back(make_governor("rtm", 22));
  std::vector<AppPlacement> placements = {{&a, {0, 1}}, {&b, {2, 3}}};

  const MultiAppResult r =
      run_multi_simulation(*platform, placements, governors);
  for (const auto& app_run : r.per_app) {
    EXPECT_LT(app_run.miss_rate(), 0.35) << app_run.application;
  }
}

TEST(MultiApp, SharedRailDragsLightApp) {
  // A heavy and a light app: the light one's requests get overridden by the
  // max arbitration some of the time, and it over-performs as a result.
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application heavy =
      make_app("h264", 25.0, 400, 1, *platform, 0.30);
  const wl::Application light = make_app("fft", 25.0, 400, 2, *platform, 0.05);
  std::vector<std::unique_ptr<gov::Governor>> governors;
  governors.push_back(make_governor("rtm", 11));
  governors.push_back(make_governor("rtm", 22));
  std::vector<AppPlacement> placements = {{&heavy, {0, 1}}, {&light, {2, 3}}};

  const MultiAppResult r =
      run_multi_simulation(*platform, placements, governors);
  EXPECT_GT(r.overridden_epochs[1], r.overridden_epochs[0]);
  // The light app finishes far ahead of its deadline (dragged fast).
  EXPECT_LT(r.per_app[1].mean_normalized_performance(),
            r.per_app[0].mean_normalized_performance());
}

TEST(MultiApp, Deterministic) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application a = make_app("mpeg4", 25.0, 200, 1, *platform);
  const wl::Application b = make_app("fft", 25.0, 200, 2, *platform);
  std::vector<AppPlacement> placements = {{&a, {0, 1}}, {&b, {2, 3}}};

  auto run_once = [&] {
    std::vector<std::unique_ptr<gov::Governor>> governors;
    governors.push_back(make_governor("rtm", 11));
    governors.push_back(make_governor("rtm", 22));
    return run_multi_simulation(*platform, placements, governors);
  };
  const MultiAppResult r1 = run_once();
  const MultiAppResult r2 = run_once();
  EXPECT_DOUBLE_EQ(r1.total_energy, r2.total_energy);
  EXPECT_EQ(r1.per_app[0].deadline_misses, r2.per_app[0].deadline_misses);
}

TEST(MultiApp, MaxFramesHonoured) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application a = make_app("mpeg4", 25.0, 200, 1, *platform);
  const wl::Application b = make_app("fft", 25.0, 200, 2, *platform);
  std::vector<std::unique_ptr<gov::Governor>> governors;
  governors.push_back(make_governor("rtm", 11));
  governors.push_back(make_governor("rtm", 22));
  std::vector<AppPlacement> placements = {{&a, {0, 1}}, {&b, {2, 3}}};
  const MultiAppResult r =
      run_multi_simulation(*platform, placements, governors, 50);
  EXPECT_EQ(r.per_app[0].epoch_count, 50u);
}

TEST(MultiApp, PerAppTelemetryStreamsMatchAggregates) {
  // Each application's epoch stream goes through the same emission path as
  // the single-app engine: a TraceSink per app must reproduce exactly the
  // aggregates the per-app RunResult reports.
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application a = make_app("mpeg4", 25.0, 120, 1, *platform);
  const wl::Application b = make_app("fft", 25.0, 120, 2, *platform);
  std::vector<std::unique_ptr<gov::Governor>> governors;
  governors.push_back(make_governor("rtm", 11));
  governors.push_back(make_governor("rtm", 22));
  std::vector<AppPlacement> placements = {{&a, {0, 1}}, {&b, {2, 3}}};

  TraceSink trace_a;
  AggregateSink agg_b;
  MultiAppOptions options;
  options.app_sinks = {{&trace_a}, {&agg_b}};
  const MultiAppResult r =
      run_multi_simulation(*platform, placements, governors, options);

  ASSERT_EQ(trace_a.records().size(), 120u);
  RunResult recomputed;
  for (const auto& rec : trace_a.records()) recomputed.accumulate(rec);
  EXPECT_DOUBLE_EQ(recomputed.total_energy, r.per_app[0].total_energy);
  EXPECT_EQ(recomputed.deadline_misses, r.per_app[0].deadline_misses);
  EXPECT_DOUBLE_EQ(recomputed.mean_normalized_performance(),
                   r.per_app[0].mean_normalized_performance());

  // The standalone AggregateSink mirrors the engine's own bookkeeping.
  EXPECT_EQ(agg_b.result().epoch_count, r.per_app[1].epoch_count);
  EXPECT_DOUBLE_EQ(agg_b.result().total_energy, r.per_app[1].total_energy);
  EXPECT_DOUBLE_EQ(agg_b.result().measured_energy,
                   r.per_app[1].measured_energy);
  EXPECT_EQ(agg_b.result().application, "fft");
}

TEST(MultiApp, StreamingAppsNeedMaxFramesAndMatchTraceReplay) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application a = make_app("mpeg4", 25.0, 50, 1, *platform);
  const wl::Application b = make_app("fft", 25.0, 50, 2, *platform);

  auto streaming_spec = [](const char* workload, std::uint64_t seed) {
    ExperimentSpec spec;
    spec.workload = workload;
    spec.fps = 25.0;
    spec.frames = 50;
    spec.seed = seed;
    spec.threads = 2;
    spec.target_utilisation = 0.20;
    spec.stream = true;
    return spec;
  };
  const wl::Application sa =
      make_application(streaming_spec("mpeg4", 1), *platform);
  const wl::Application sb =
      make_application(streaming_spec("fft", 2), *platform);
  ASSERT_TRUE(sa.streaming());

  std::vector<std::unique_ptr<gov::Governor>> governors;
  governors.push_back(make_governor("ondemand"));
  governors.push_back(make_governor("ondemand"));
  std::vector<AppPlacement> streamed = {{&sa, {0, 1}}, {&sb, {2, 3}}};

  // All placements unbounded: max_frames is mandatory.
  EXPECT_THROW(run_multi_simulation(*platform, streamed, governors),
               std::invalid_argument);

  // With max_frames set, the streamed run reproduces the trace-replay run.
  const MultiAppResult streamed_run =
      run_multi_simulation(*platform, streamed, governors, 50);
  std::vector<AppPlacement> replayed = {{&a, {0, 1}}, {&b, {2, 3}}};
  const MultiAppResult replayed_run =
      run_multi_simulation(*platform, replayed, governors, 50);
  ASSERT_EQ(streamed_run.per_app.size(), 2u);
  EXPECT_EQ(streamed_run.per_app[0].epoch_count, 50u);
  EXPECT_DOUBLE_EQ(streamed_run.total_energy, replayed_run.total_energy);

  // A bounded co-runner supplies the run length: no max_frames needed.
  std::vector<AppPlacement> mixed = {{&a, {0, 1}}, {&sb, {2, 3}}};
  const MultiAppResult mixed_run =
      run_multi_simulation(*platform, mixed, governors);
  EXPECT_EQ(mixed_run.per_app[0].epoch_count, 50u);
}

}  // namespace
}  // namespace prime::sim
