/// \file test_http.cpp
/// \brief Tests for the minimal loopback HTTP server/client pair under the
///        dashboard sink: request parsing, fixed and streaming responses,
///        handler errors, concurrent clients, and shutdown semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/http.hpp"

namespace prime::common {
namespace {

/// \brief Number of mapped regions of this process (Linux), or 0 when
///        /proc is unavailable. An exited-but-unjoined thread retains its
///        stack mapping, so zombie connection threads show up here.
std::size_t mapped_region_count() {
  std::ifstream maps("/proc/self/maps");
  if (!maps) return 0;
  std::size_t n = 0;
  std::string line;
  while (std::getline(maps, line)) ++n;
  return n;
}

/// A server answering every request with a fixed body, plus the parsed
/// request captured for inspection.
class EchoFixture {
 public:
  EchoFixture()
      : server_(0, [this](const HttpRequest& req) {
          {
            std::lock_guard<std::mutex> lock(mu_);
            last_ = req;
          }
          HttpResponse res;
          res.body = "hello";
          res.content_type = "text/plain";
          return res;
        }) {}

  HttpServer& server() { return server_; }
  HttpRequest last() {
    std::lock_guard<std::mutex> lock(mu_);
    return last_;
  }

 private:
  std::mutex mu_;
  HttpRequest last_;
  HttpServer server_;  // Last: joins its threads before last_ dies.
};

TEST(HttpServer, EphemeralPortRoundTrip) {
  EchoFixture fx;
  ASSERT_NE(fx.server().port(), 0);
  const HttpResult result = http_get("127.0.0.1", fx.server().port(), "/");
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "hello");
  EXPECT_EQ(fx.server().requests_served(), 1u);
}

TEST(HttpServer, ParsesPathAndQuery) {
  EchoFixture fx;
  (void)http_get("127.0.0.1", fx.server().port(),
                 "/window?from=12&count=8&label=a%20b");
  const HttpRequest req = fx.last();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/window");
  EXPECT_EQ(req.query_get("from", ""), "12");
  EXPECT_EQ(req.query_get("count", ""), "8");
  EXPECT_EQ(req.query_get("label", ""), "a b");  // %20 decoded
  EXPECT_EQ(req.query_get("absent", "fallback"), "fallback");
}

TEST(HttpServer, HandlerStatusPassesThrough) {
  HttpServer server(0, [](const HttpRequest& req) {
    HttpResponse res;
    res.status = req.path == "/ok" ? 200 : 404;
    res.body = res.status == 200 ? "y" : "no such page";
    return res;
  });
  EXPECT_EQ(http_get("127.0.0.1", server.port(), "/ok").status, 200);
  const HttpResult missing = http_get("127.0.0.1", server.port(), "/nope");
  EXPECT_EQ(missing.status, 404);
  EXPECT_EQ(missing.body, "no such page");
}

TEST(HttpServer, HandlerExceptionBecomesA500) {
  HttpServer server(0, [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("kaboom");
  });
  const HttpResult result = http_get("127.0.0.1", server.port(), "/");
  EXPECT_EQ(result.status, 500);
  EXPECT_NE(result.body.find("kaboom"), std::string::npos);
}

TEST(HttpServer, ConcurrentClientsAllAnswered) {
  EchoFixture fx;
  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      const HttpResult r = http_get("127.0.0.1", fx.server().port(), "/");
      if (r.status == 200 && r.body == "hello") ++ok;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);
  EXPECT_EQ(fx.server().requests_served(), static_cast<std::uint64_t>(kClients));
}

TEST(HttpServer, SequentialRequestsReapConnectionThreads) {
  // A long-lived dashboard is polled for days: finished connection threads
  // must be joined as the server runs, not accumulated until stop().
  // An unjoined exited thread keeps its stack mapping, so a leak of one
  // thread per request shows up as ~one new mapped region per request.
  EchoFixture fx;
  for (int i = 0; i < 8; ++i) {
    (void)http_get("127.0.0.1", fx.server().port(), "/");  // warm up
  }
  const std::size_t before = mapped_region_count();
  if (before == 0) GTEST_SKIP() << "/proc/self/maps unavailable";
  constexpr int kRequests = 100;
  for (int i = 0; i < kRequests; ++i) {
    (void)http_get("127.0.0.1", fx.server().port(), "/");
  }
  // Each accept reaps the previously finished connections, so growth stays
  // a small constant (in-flight stragglers), never O(requests). The old
  // accumulate-until-stop behavior grows by >= kRequests mappings here.
  const std::size_t after = mapped_region_count();
  EXPECT_LT(after, before + kRequests / 2)
      << "connection threads are not being reaped";
}

TEST(HttpServer, StreamingResponseDeliversChunksAsLines) {
  // An SSE-shaped stream: three events, then the producer ends the stream.
  HttpServer server(0, [](const HttpRequest&) {
    HttpResponse res;
    res.content_type = "text/event-stream";
    res.body = "data: 0\n\n";
    auto n = std::make_shared<int>(0);
    res.next_chunk = [n](std::string& chunk) {
      if (++*n > 2) return false;
      chunk = "data: " + std::to_string(*n) + "\n\n";
      return true;
    };
    return res;
  });
  std::vector<std::string> events;
  const int status = http_get_stream(
      "127.0.0.1", server.port(), "/events", [&](const std::string& line) {
        if (line.rfind("data: ", 0) == 0) events.push_back(line.substr(6));
        return true;
      });
  EXPECT_EQ(status, 200);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], "0");
  EXPECT_EQ(events[2], "2");
}

TEST(HttpServer, ClientCanCloseAStreamEarly) {
  // An endless producer: only the client's on_line=false ends this stream.
  HttpServer server(0, [](const HttpRequest&) {
    HttpResponse res;
    res.content_type = "text/event-stream";
    res.body = "data: tick\n\n";
    res.next_chunk = [](std::string& chunk) {
      chunk = "data: tick\n\n";
      return true;
    };
    return res;
  });
  int seen = 0;
  const int status = http_get_stream(
      "127.0.0.1", server.port(), "/events", [&](const std::string& line) {
        if (line.rfind("data: ", 0) == 0) ++seen;
        return seen < 3;
      });
  EXPECT_EQ(status, 200);
  EXPECT_EQ(seen, 3);
}

TEST(HttpServer, StopInterruptsALiveStream) {
  // stop() must cut a stream whose producer never finishes — the dashboard
  // destructor relies on this to join SSE watchers at run teardown.
  HttpServer server(0, [](const HttpRequest&) {
    HttpResponse res;
    res.content_type = "text/event-stream";
    res.body = "data: first\n\n";
    res.next_chunk = [](std::string& chunk) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      chunk = "data: more\n\n";
      return true;
    };
    return res;
  });
  std::atomic<bool> got_first{false};
  std::thread client([&] {
    (void)http_get_stream("127.0.0.1", server.port(), "/events",
                          [&](const std::string& line) {
                            if (line.rfind("data: ", 0) == 0) {
                              got_first = true;
                            }
                            return true;  // never hang up from this side
                          });
  });
  while (!got_first) std::this_thread::yield();
  server.stop();   // must unblock the stream...
  client.join();   // ...or this join would hang the test
  SUCCEED();
}

TEST(HttpServer, StopIsIdempotentAndRefusesNewConnections) {
  EchoFixture fx;
  const std::uint16_t port = fx.server().port();
  (void)http_get("127.0.0.1", port, "/");
  fx.server().stop();
  fx.server().stop();  // second stop is a no-op
  EXPECT_THROW((void)http_get("127.0.0.1", port, "/"), HttpError);
}

TEST(HttpClient, ConnectFailureThrowsNamingTheEndpoint) {
  // Grab an ephemeral port, then close the server so nothing listens on it.
  std::uint16_t dead_port = 0;
  {
    HttpServer probe(0, [](const HttpRequest&) { return HttpResponse{}; });
    dead_port = probe.port();
  }
  try {
    (void)http_get("127.0.0.1", dead_port, "/");
    FAIL() << "expected HttpError";
  } catch (const HttpError& e) {
    EXPECT_NE(std::string(e.what()).find(std::to_string(dead_port)),
              std::string::npos);
  }
}

TEST(HttpServer, PortCollisionThrows) {
  EchoFixture fx;
  EXPECT_THROW(HttpServer(fx.server().port(),
                          [](const HttpRequest&) { return HttpResponse{}; }),
               HttpError);
}

}  // namespace
}  // namespace prime::common
