/// \file test_synthetic.cpp
/// \brief Unit tests for phase- and Markov-modulated workload generators.
#include <gtest/gtest.h>

#include "wl/synthetic.hpp"

namespace prime::wl {
namespace {

TEST(PhaseTraceGenerator, RejectsInvalidPrograms) {
  EXPECT_THROW(PhaseTraceGenerator("x", {}), std::invalid_argument);
  EXPECT_THROW(PhaseTraceGenerator("x", {Phase{0, 1.0e6, 0.0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(PhaseTraceGenerator("x", {Phase{10, -1.0, 0.0, 0.0}}),
               std::invalid_argument);
}

TEST(PhaseTraceGenerator, PhasesFollowProgram) {
  const PhaseTraceGenerator g(
      "two-phase",
      {Phase{50, 100.0e6, 0.0, 0.0}, Phase{50, 200.0e6, 0.0, 0.0}});
  const WorkloadTrace t = g.generate(100, 1);
  EXPECT_NEAR(static_cast<double>(t.at(10).cycles), 100.0e6, 1.0e4);
  EXPECT_NEAR(static_cast<double>(t.at(60).cycles), 200.0e6, 1.0e4);
}

TEST(PhaseTraceGenerator, LoopsWhenExhausted) {
  const PhaseTraceGenerator g("loop", {Phase{10, 100.0e6, 0.0, 0.0},
                                       Phase{10, 300.0e6, 0.0, 0.0}});
  const WorkloadTrace t = g.generate(45, 2);
  // Frames 40-44 are back in phase 0.
  EXPECT_NEAR(static_cast<double>(t.at(42).cycles), 100.0e6, 1.0e4);
}

TEST(PhaseTraceGenerator, RampDriftsAcrossPhase) {
  const PhaseTraceGenerator g("ramp", {Phase{100, 100.0e6, 0.0, 0.5}});
  const WorkloadTrace t = g.generate(100, 3);
  // +-25 % linear drift: late frames heavier than early ones.
  EXPECT_GT(static_cast<double>(t.at(99).cycles),
            static_cast<double>(t.at(0).cycles) * 1.3);
}

TEST(PhaseTraceGenerator, Deterministic) {
  const PhaseTraceGenerator g("d", {Phase{20, 100.0e6, 0.1, 0.0}});
  const WorkloadTrace a = g.generate(20, 9);
  const WorkloadTrace b = g.generate(20, 9);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).cycles, b.at(i).cycles);
  }
}

TEST(MarkovTraceGenerator, RejectsBadParams) {
  MarkovParams p;
  p.state_means = {};
  EXPECT_THROW(MarkovTraceGenerator{p}, std::invalid_argument);
  p.state_means = {1.0e6, 2.0e6};
  p.transition = {1.0};  // wrong size
  EXPECT_THROW(MarkovTraceGenerator{p}, std::invalid_argument);
  p.transition = {0.5, 0.5, 0.5, 0.5};
  p.initial_state = 5;
  EXPECT_THROW(MarkovTraceGenerator{p}, std::invalid_argument);
}

TEST(MarkovTraceGenerator, VisitsAllStates) {
  MarkovParams p;  // defaults: 3 states
  p.jitter_cv = 0.0;
  const MarkovTraceGenerator g(p);
  const WorkloadTrace t = g.generate(3000, 4);
  bool lo = false;
  bool mid = false;
  bool hi = false;
  for (const auto& f : t.frames()) {
    const auto c = static_cast<double>(f.cycles);
    lo = lo || std::abs(c - 80.0e6) < 1.0e4;
    mid = mid || std::abs(c - 120.0e6) < 1.0e4;
    hi = hi || std::abs(c - 180.0e6) < 1.0e4;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(mid);
  EXPECT_TRUE(hi);
}

TEST(MarkovTraceGenerator, AbsorbingStatePinsDemand) {
  MarkovParams p;
  p.state_means = {50.0e6, 150.0e6};
  p.transition = {1.0, 0.0,   // state 0 never leaves
                  0.0, 1.0};
  p.jitter_cv = 0.0;
  p.initial_state = 0;
  const MarkovTraceGenerator g(p);
  const WorkloadTrace t = g.generate(100, 5);
  for (const auto& f : t.frames()) {
    EXPECT_NEAR(static_cast<double>(f.cycles), 50.0e6, 1.0);
  }
}

TEST(MarkovTraceGenerator, Deterministic) {
  const MarkovTraceGenerator g{MarkovParams{}};
  const WorkloadTrace a = g.generate(200, 6);
  const WorkloadTrace b = g.generate(200, 6);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).cycles, b.at(i).cycles);
  }
}

}  // namespace
}  // namespace prime::wl
