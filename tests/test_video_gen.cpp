/// \file test_video_gen.cpp
/// \brief Unit tests for the GOP-structured video workload generator.
#include <gtest/gtest.h>

#include "wl/video.hpp"

namespace prime::wl {
namespace {

TEST(VideoTraceGenerator, DeterministicForSeed) {
  const VideoTraceGenerator g = VideoTraceGenerator::mpeg4_svga();
  const WorkloadTrace a = g.generate(200, 42);
  const WorkloadTrace b = g.generate(200, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).cycles, b.at(i).cycles);
  }
}

TEST(VideoTraceGenerator, SeedsDiffer) {
  const VideoTraceGenerator g = VideoTraceGenerator::mpeg4_svga();
  const WorkloadTrace a = g.generate(100, 1);
  const WorkloadTrace b = g.generate(100, 2);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.at(i).cycles == b.at(i).cycles) ++same;
  }
  EXPECT_LT(same, 5u);
}

TEST(VideoTraceGenerator, GopStructure) {
  const VideoTraceGenerator g = VideoTraceGenerator::mpeg4_svga();
  const WorkloadTrace t = g.generate(48, 7);
  const std::size_t gop = g.params().gop_length;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i % gop == 0) {
      EXPECT_EQ(t.at(i).kind, FrameKind::kIntra) << "frame " << i;
    } else {
      EXPECT_NE(t.at(i).kind, FrameKind::kIntra) << "frame " << i;
    }
  }
}

TEST(VideoTraceGenerator, IFramesHeavierOnAverage) {
  const VideoTraceGenerator g = VideoTraceGenerator::mpeg4_svga();
  const WorkloadTrace t = g.generate(2000, 11);
  double i_sum = 0.0;
  double b_sum = 0.0;
  std::size_t i_n = 0;
  std::size_t b_n = 0;
  for (const auto& f : t.frames()) {
    if (f.kind == FrameKind::kIntra) {
      i_sum += static_cast<double>(f.cycles);
      ++i_n;
    } else if (f.kind == FrameKind::kBidirectional) {
      b_sum += static_cast<double>(f.cycles);
      ++b_n;
    }
  }
  ASSERT_GT(i_n, 0u);
  ASSERT_GT(b_n, 0u);
  EXPECT_GT(i_sum / static_cast<double>(i_n), b_sum / static_cast<double>(b_n));
}

TEST(VideoTraceGenerator, MeanMatchesConfiguredLevel) {
  const VideoTraceGenerator g = VideoTraceGenerator::mpeg4_svga();
  const WorkloadTrace t = g.generate(5000, 13);
  EXPECT_NEAR(t.mean_cycles() / g.params().mean_cycles, 1.0, 0.15);
}

TEST(VideoTraceGenerator, FootballHasHigherVariabilityThanMpeg4) {
  const WorkloadTrace fb =
      VideoTraceGenerator::h264_football().generate(3000, 17);
  const WorkloadTrace mp =
      VideoTraceGenerator::mpeg4_svga().generate(3000, 17);
  EXPECT_GT(fb.cv(), mp.cv());
}

TEST(VideoTraceGenerator, AllDemandsPositive) {
  const WorkloadTrace t =
      VideoTraceGenerator::h264_football().generate(3000, 19);
  for (const auto& f : t.frames()) EXPECT_GT(f.cycles, 0u);
}

TEST(VideoTraceGenerator, NameFollowsLabel) {
  EXPECT_EQ(VideoTraceGenerator::mpeg4_svga().name(), "mpeg4-svga");
  EXPECT_EQ(VideoTraceGenerator::h264_football().name(), "h264-football");
}

/// Property: scene changes rescale demand but never produce outliers beyond
/// the configured envelope (weights x scene scale x clamped jitter).
class VideoSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VideoSeedSweep, DemandStaysInEnvelope) {
  const VideoTraceGenerator g = VideoTraceGenerator::h264_football();
  const WorkloadTrace t = g.generate(1000, GetParam());
  const auto& p = g.params();
  // Envelope: base * i_weight * scene_hi * (1 + 6 sigma jitter).
  const double gop_mean_weight = 1.0;  // weights normalised to the mean
  const double hi = p.mean_cycles / gop_mean_weight * p.i_weight *
                    p.scene_scale_hi * (1.0 + 6.0 * p.jitter_cv) * 1.6;
  for (const auto& f : t.frames()) {
    EXPECT_LT(static_cast<double>(f.cycles), hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VideoSeedSweep,
                         ::testing::Values(1ull, 7ull, 42ull, 1234ull));

}  // namespace
}  // namespace prime::wl
