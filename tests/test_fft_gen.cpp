/// \file test_fft_gen.cpp
/// \brief Unit tests for the FFT workload generator.
#include <gtest/gtest.h>

#include "wl/fft.hpp"
#include "wl/video.hpp"

namespace prime::wl {
namespace {

TEST(FftTraceGenerator, Deterministic) {
  const FftTraceGenerator g = FftTraceGenerator::paper_fft();
  const WorkloadTrace a = g.generate(100, 5);
  const WorkloadTrace b = g.generate(100, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).cycles, b.at(i).cycles);
  }
}

TEST(FftTraceGenerator, LowVariability) {
  // The paper's premise for Table II: FFT has the least workload variation.
  const WorkloadTrace t = FftTraceGenerator::paper_fft().generate(2000, 3);
  EXPECT_LT(t.cv(), 0.06);
}

TEST(FftTraceGenerator, LowerCvThanVideo) {
  const WorkloadTrace fft = FftTraceGenerator::paper_fft().generate(2000, 3);
  const WorkloadTrace vid =
      VideoTraceGenerator::mpeg4_svga().generate(2000, 3);
  EXPECT_LT(fft.cv(), vid.cv());
}

TEST(FftTraceGenerator, MeanNearConfigured) {
  const FftTraceGenerator g = FftTraceGenerator::paper_fft();
  const WorkloadTrace t = g.generate(2000, 9);
  EXPECT_NEAR(t.mean_cycles() / g.params().mean_cycles, 1.0, 0.05);
}

TEST(FftTraceGenerator, AllFramesGeneric) {
  const WorkloadTrace t = FftTraceGenerator::paper_fft().generate(100, 1);
  for (const auto& f : t.frames()) EXPECT_EQ(f.kind, FrameKind::kGeneric);
}

TEST(FftTraceGenerator, OutliersBounded) {
  FftParams p;
  p.outlier_prob = 0.5;
  p.outlier_scale = 1.2;
  const FftTraceGenerator g(p);
  const WorkloadTrace t = g.generate(1000, 21);
  for (const auto& f : t.frames()) {
    EXPECT_LT(static_cast<double>(f.cycles),
              p.mean_cycles * p.outlier_scale * 1.3);
  }
}

TEST(FftTraceGenerator, PositiveDemands) {
  const WorkloadTrace t = FftTraceGenerator::paper_fft().generate(1000, 33);
  for (const auto& f : t.frames()) EXPECT_GT(f.cycles, 0u);
}

}  // namespace
}  // namespace prime::wl
