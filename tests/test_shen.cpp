/// \file test_shen.cpp
/// \brief Unit tests for the UPD RL baseline [21].
#include <gtest/gtest.h>

#include "gov/shen_rl.hpp"

namespace prime::gov {
namespace {

DecisionContext make_ctx(const hw::OppTable& opps) {
  DecisionContext ctx;
  ctx.period = 0.040;
  ctx.cores = 4;
  ctx.opps = &opps;
  return ctx;
}

EpochObservation make_obs(const hw::OppTable& opps, std::size_t opp_index,
                          double load, bool met = true) {
  EpochObservation o;
  o.period = 0.040;
  o.window = 0.040;
  o.frame_time = met ? load * 0.040 : 0.05;
  o.opp_index = opp_index;
  const common::Cycles c =
      common::cycles_at(opps.at(opp_index).frequency, load * 0.040);
  o.core_cycles = {c, c, c, c};
  o.total_cycles = 4 * c;
  o.deadline_met = met;
  return o;
}

TEST(ShenRl, ExplorationCountGrowsDuringLearning) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ShenRlGovernor g;
  auto ctx = make_ctx(opps);
  std::optional<EpochObservation> obs;
  for (int i = 0; i < 100; ++i) {
    const auto idx = g.decide(ctx, obs);
    obs = make_obs(opps, idx, 0.5);
  }
  // Epsilon ~ 0.993^i stays high for 100 epochs: nearly all explored.
  EXPECT_GT(g.exploration_count(), 60u);
}

TEST(ShenRl, GeometricScheduleHitsFloorNear660) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ShenRlGovernor g;
  auto ctx = make_ctx(opps);
  std::optional<EpochObservation> obs;
  for (int i = 0; i < 800; ++i) {
    const auto idx = g.decide(ctx, obs);
    obs = make_obs(opps, idx, 0.5);
  }
  EXPECT_NEAR(static_cast<double>(g.learning_complete_epoch()), 656.0, 10.0);
}

TEST(ShenRl, DeterministicForSeed) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ShenRlParams p;
  p.seed = 5;
  ShenRlGovernor a(p);
  ShenRlGovernor b(p);
  auto ctx = make_ctx(opps);
  std::optional<EpochObservation> oa;
  std::optional<EpochObservation> ob;
  for (int i = 0; i < 60; ++i) {
    const auto ia = a.decide(ctx, oa);
    const auto ib = b.decide(ctx, ob);
    ASSERT_EQ(ia, ib);
    oa = make_obs(opps, ia, 0.4);
    ob = make_obs(opps, ib, 0.4);
  }
}

TEST(ShenRl, RewardPenalisesPowerWhenGreedy) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ShenRlParams p;
  p.epsilon0 = 0.0;  // greedy from the start
  p.epsilon_min = 0.0;
  ShenRlGovernor g(p);
  auto ctx = make_ctx(opps);
  std::optional<EpochObservation> obs;
  std::size_t idx = g.decide(ctx, obs);
  // All actions meet the deadline comfortably: power term should drag the
  // greedy policy down the table over time.
  for (int i = 0; i < 200; ++i) {
    obs = make_obs(opps, idx, 0.2, true);
    idx = g.decide(ctx, obs);
  }
  EXPECT_LT(idx, opps.size() / 2);
}

TEST(ShenRl, GreedyPolicySized) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ShenRlParams p;
  ShenRlGovernor g(p);
  (void)g.decide(make_ctx(opps), std::nullopt);
  EXPECT_EQ(g.greedy_policy().size(), p.workload_levels * p.slack_levels);
}

TEST(ShenRl, ResetRestartsSchedule) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  ShenRlGovernor g;
  auto ctx = make_ctx(opps);
  std::optional<EpochObservation> obs;
  for (int i = 0; i < 50; ++i) {
    const auto idx = g.decide(ctx, obs);
    obs = make_obs(opps, idx, 0.5);
  }
  g.reset();
  EXPECT_DOUBLE_EQ(g.epsilon(), 1.0);
  EXPECT_EQ(g.exploration_count(), 0u);
  EXPECT_EQ(g.learning_complete_epoch(), 0u);
}

TEST(ShenRl, NameIdentifiesUpd) {
  ShenRlGovernor g;
  EXPECT_EQ(g.name(), "shen-rl-upd");
}

}  // namespace
}  // namespace prime::gov
