/// \file test_suites.cpp
/// \brief Unit tests for PARSEC/SPLASH-2 workload presets.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "wl/suites.hpp"

namespace prime::wl {
namespace {

TEST(Suites, AllParsecNamesConstruct) {
  for (const auto& name : parsec_names()) {
    const auto g = make_parsec(name);
    ASSERT_NE(g, nullptr) << name;
    const WorkloadTrace t = g->generate(50, 1);
    EXPECT_EQ(t.size(), 50u) << name;
    EXPECT_GT(t.mean_cycles(), 0.0) << name;
  }
}

TEST(Suites, AllSplash2NamesConstruct) {
  for (const auto& name : splash2_names()) {
    const auto g = make_splash2(name);
    ASSERT_NE(g, nullptr) << name;
    const WorkloadTrace t = g->generate(50, 1);
    EXPECT_EQ(t.size(), 50u) << name;
  }
}

TEST(Suites, UnknownNamesThrow) {
  EXPECT_THROW(make_parsec("nope"), std::invalid_argument);
  EXPECT_THROW(make_splash2("nope"), std::invalid_argument);
  EXPECT_THROW(make_workload("nope"), std::invalid_argument);
}

TEST(Suites, MakeWorkloadCoversEverything) {
  for (const auto& name : all_workload_names()) {
    const auto g = make_workload(name);
    ASSERT_NE(g, nullptr) << name;
    EXPECT_FALSE(g->name().empty()) << name;
  }
}

TEST(Suites, AllWorkloadNamesIncludePaperApplications) {
  const auto names = all_workload_names();
  auto has = [&](const char* n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("mpeg4"));
  EXPECT_TRUE(has("h264"));
  EXPECT_TRUE(has("fft"));
  EXPECT_TRUE(has("blackscholes"));
  EXPECT_TRUE(has("radix"));
}

TEST(Suites, BlackscholesIsFlat) {
  const auto g = make_parsec("blackscholes");
  EXPECT_LT(g->generate(1000, 2).cv(), 0.08);
}

TEST(Suites, BodytrackVariesMoreThanBlackscholes) {
  const double flat = make_parsec("blackscholes")->generate(2000, 3).cv();
  const double track = make_parsec("bodytrack")->generate(2000, 3).cv();
  EXPECT_GT(track, flat);
}

TEST(Suites, LuDemandShrinksOverRun) {
  const auto g = make_splash2("lu");
  const WorkloadTrace t = g->generate(200, 4);
  double early = 0.0;
  double late = 0.0;
  for (std::size_t i = 0; i < 50; ++i) early += static_cast<double>(t.at(i).cycles);
  for (std::size_t i = 150; i < 200; ++i) late += static_cast<double>(t.at(i).cycles);
  EXPECT_LT(late, early);
}

TEST(Suites, DeterministicAcrossCalls) {
  const auto a = make_parsec("ferret")->generate(100, 77);
  const auto b = make_parsec("ferret")->generate(100, 77);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).cycles, b.at(i).cycles);
  }
}

TEST(Suites, ListingsAreStableAcrossCalls) {
  // Sweep and bench output ordering leans on these listings being a fixed
  // point: two calls must return the identical sequence, not merely the same
  // set (a registry rebuilt per call could legally reorder).
  EXPECT_EQ(parsec_names(), parsec_names());
  EXPECT_EQ(splash2_names(), splash2_names());
  EXPECT_EQ(all_workload_names(), all_workload_names());
}

TEST(Suites, ListingsAreDuplicateFree) {
  for (const auto& names :
       {parsec_names(), splash2_names(), all_workload_names()}) {
    const std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
  }
}

TEST(Suites, AllWorkloadNamesIsSortedAndCoversTheSuites) {
  // all_workload_names() comes from the registry, which reports sorted — the
  // stable order user-facing listings and did-you-mean errors print.
  const auto names = all_workload_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  const std::set<std::string> all(names.begin(), names.end());
  for (const auto& name : parsec_names()) {
    EXPECT_TRUE(all.count(name)) << name;
  }
  for (const auto& name : splash2_names()) {
    EXPECT_TRUE(all.count(name)) << name;
  }
}

TEST(Suites, PresetLabelsAreNamespacedAndDistinct) {
  // Generator display labels carry their suite prefix and never collide, so
  // mixed-suite sweeps render unambiguous rows.
  std::set<std::string> labels;
  for (const auto& name : parsec_names()) {
    const auto label = make_parsec(name)->name();
    EXPECT_EQ(label.rfind("parsec-", 0), 0u) << label;
    EXPECT_TRUE(labels.insert(label).second) << label;
  }
  for (const auto& name : splash2_names()) {
    const auto label = make_splash2(name)->name();
    if (name != "splash-fft") {  // splash-fft reuses the paper FFT generator
      EXPECT_EQ(label.rfind("splash2-", 0), 0u) << label;
    }
    EXPECT_TRUE(labels.insert(label).second) << label;
  }
}

}  // namespace
}  // namespace prime::wl
