/// \file test_qlib.cpp
/// \brief Tests for the warm-start policy library: PolicyKey canonical
///        encoding, sealed `.qpol` round-trips and corrupt-input rejection,
///        PolicyLibrary storage, the merge algebra (associativity, order
///        invariance, self-merge idempotence, per-axis mismatch errors),
///        engine warm starts, the qlib publish sink, and the fleet-merge
///        bit-identity differential (any shard count, kill/retry included).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/driver.hpp"
#include "fleet/population.hpp"
#include "fleet/runner.hpp"
#include "fleet/summary.hpp"
#include "hw/platform.hpp"
#include "qlib/library.hpp"
#include "qlib/policy.hpp"
#include "qlib/sink.hpp"
#include "rtm/rtm_governor.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/telemetry.hpp"

namespace prime::qlib {
namespace {

std::string temp_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "qlib-tests/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

wl::Application make_app(const std::string& workload, std::uint64_t seed,
                         const hw::Platform& platform, double fps = 25.0,
                         std::size_t frames = 200) {
  sim::ExperimentSpec spec;
  spec.workload = workload;
  spec.fps = fps;
  spec.frames = frames;
  spec.seed = seed;
  return sim::make_application(spec, platform);
}

/// Train one governor on a short run and return its leaf policy entry.
PolicyEntry train_leaf(const hw::Platform& platform, const std::string& spec,
                       std::uint64_t gov_seed, std::uint64_t trace_seed,
                       const std::string& workload = "mpeg4") {
  const wl::Application app = make_app(workload, trace_seed, platform);
  const auto governor = sim::make_governor(spec, gov_seed);
  const sim::RunResult run = sim::run_simulation(
      const_cast<hw::Platform&>(platform), app, *governor);
  return make_leaf_entry(platform, *governor, workload, 25.0, spec,
                         run.epoch_count);
}

/// Assert \p fn throws QlibError whose message contains \p needle.
template <typename Fn>
void expect_qlib_error(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected QlibError containing '" << needle << "'";
  } catch (const QlibError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

// --- PolicyKey ---------------------------------------------------------------

TEST(PolicyKey, WorkloadClassDropsParametersAndTrims) {
  EXPECT_EQ(PolicyKey::workload_class_of("flat(mean=2e8,cv=0.1)"), "flat");
  EXPECT_EQ(PolicyKey::workload_class_of("mpeg4"), "mpeg4");
  EXPECT_EQ(PolicyKey::workload_class_of("  h264 "), "h264");
}

TEST(PolicyKey, FpsBandsQuantiseToTheFiveFpsGrid) {
  EXPECT_EQ(PolicyKey::fps_band_of(25.0), 25u);
  EXPECT_EQ(PolicyKey::fps_band_of(27.0), 25u);
  EXPECT_EQ(PolicyKey::fps_band_of(28.0), 30u);
  EXPECT_EQ(PolicyKey::fps_band_of(1.0), 5u);   // floor: never a zero band
  EXPECT_EQ(PolicyKey::fps_band_of(0.0), 5u);
}

TEST(PolicyKey, GovernorSpecCanonicalisesThroughSpecParsing) {
  EXPECT_EQ(PolicyKey::canonical_governor_spec("rtm( alpha = 0.25 )"),
            PolicyKey::canonical_governor_spec("rtm(alpha=0.25)"));
  // Display names that are not parseable specs survive verbatim.
  EXPECT_EQ(PolicyKey::canonical_governor_spec("rtm+thermal-cap"),
            "rtm+thermal-cap");
}

TEST(PolicyKey, FingerprintSeparatesEveryKeyComponent) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const PolicyKey base = PolicyKey::make(*platform, "mpeg4", 25.0, "rtm");
  PolicyKey other = base;
  other.workload_class = "h264";
  EXPECT_NE(other.fingerprint(), base.fingerprint());
  other = base;
  other.fps_band = 30;
  EXPECT_NE(other.fingerprint(), base.fingerprint());
  other = base;
  other.governor_spec = "rtm(alpha=0.5)";
  EXPECT_NE(other.fingerprint(), base.fingerprint());
  other = base;
  other.platform_fingerprint ^= 1;
  EXPECT_NE(other.fingerprint(), base.fingerprint());
}

TEST(PolicyKey, FilenameIsSanitisedAndEmbedsTheFingerprint) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const PolicyKey key =
      PolicyKey::make(*platform, "mpeg4", 25.0, "rtm(alpha=0.25)");
  const std::string name = key.filename();
  EXPECT_NE(name.find(".qpol"), std::string::npos);
  EXPECT_EQ(name.find('('), std::string::npos) << name;
  EXPECT_EQ(name.find('='), std::string::npos) << name;
}

// --- .qpol round-trip and corrupt-input rejection ----------------------------

TEST(PolicyEntryFile, RoundTripsExactly) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const PolicyEntry entry = train_leaf(*platform, "rtm", 1, 2);
  EXPECT_EQ(entry.kind, PolicyBlobKind::kLeaf);
  EXPECT_GT(entry.provenance.visit_weight, 0u);
  EXPECT_EQ(entry.provenance.sources, 1u);

  const std::string path = temp_dir("roundtrip") + "/entry.qpol";
  entry.save_file(path);
  const PolicyEntry loaded = PolicyEntry::load_file(path);
  EXPECT_EQ(loaded.key, entry.key);
  EXPECT_EQ(loaded.governor_name, entry.governor_name);
  EXPECT_EQ(loaded.opp_count, entry.opp_count);
  EXPECT_EQ(loaded.core_count, entry.core_count);
  EXPECT_EQ(loaded.kind, entry.kind);
  EXPECT_EQ(loaded.provenance.visit_weight, entry.provenance.visit_weight);
  EXPECT_EQ(loaded.provenance.epochs_trained, entry.provenance.epochs_trained);
  EXPECT_EQ(loaded.provenance.sources, entry.provenance.sources);
  EXPECT_EQ(loaded.provenance.source_fingerprint,
            entry.provenance.source_fingerprint);
  EXPECT_EQ(loaded.blob, entry.blob);

  // save/load/save is byte-stable.
  const std::string again = temp_dir("roundtrip2") + "/entry.qpol";
  loaded.save_file(again);
  EXPECT_EQ(read_bytes(again), read_bytes(path));
}

TEST(PolicyEntryFile, RejectsCorruptFiles) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const PolicyEntry entry = train_leaf(*platform, "rtm", 1, 2);
  const std::string dir = temp_dir("corrupt");
  const std::string good_path = dir + "/good.qpol";
  entry.save_file(good_path);
  const std::string good = read_bytes(good_path);
  ASSERT_GT(good.size(), kQpolHeaderSize);
  const std::string bad_path = dir + "/bad.qpol";

  const auto expect_rejected = [&](std::string bytes,
                                   const std::string& what) {
    write_bytes(bad_path, bytes);
    EXPECT_THROW((void)PolicyEntry::load_file(bad_path), QlibError) << what;
  };

  // Truncated header.
  expect_rejected(good.substr(0, 10), "truncated header");
  // Bad magic.
  {
    std::string bytes = good;
    bytes[0] = 'X';
    expect_rejected(bytes, "bad magic");
  }
  // Version skew.
  {
    std::string bytes = good;
    bytes[8] = static_cast<char>(kQpolVersion + 1);
    expect_rejected(bytes, "version skew");
  }
  // Unsealed (payload-size sentinel still in place).
  {
    std::string bytes = good;
    for (std::size_t i = 16; i < 24; ++i) bytes[i] = '\xff';
    expect_rejected(bytes, "unsealed");
  }
  // Truncated payload.
  expect_rejected(good.substr(0, good.size() - 5), "truncated payload");
  // Trailing bytes after the sealed payload.
  expect_rejected(good + "junk", "trailing bytes");
  // Header key fingerprint disagrees with the payload's key.
  {
    std::string bytes = good;
    bytes[24] = static_cast<char>(bytes[24] ^ 0x01);
    expect_rejected(bytes, "header fingerprint skew");
  }
  // The original is untouched by all of the above.
  EXPECT_NO_THROW((void)PolicyEntry::load_file(good_path));
}

TEST(PolicyEntryFile, StateForChecksTheGovernorName) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const PolicyEntry entry = train_leaf(*platform, "rtm", 1, 2);
  const auto matching = sim::make_governor("rtm", 9);
  EXPECT_EQ(entry.state_for(*matching), entry.blob);
  const auto foreign = sim::make_governor("performance", 9);
  expect_qlib_error([&] { (void)entry.state_for(*foreign); }, "governor");
}

// --- PolicyLibrary -----------------------------------------------------------

TEST(PolicyLibrary, PutGetContainsListFind) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const PolicyEntry entry = train_leaf(*platform, "rtm", 1, 2);
  const PolicyLibrary lib(temp_dir("library"));

  EXPECT_FALSE(lib.contains(entry.key));
  const std::string path = lib.put(entry);
  EXPECT_TRUE(lib.contains(entry.key));
  EXPECT_EQ(path, lib.path_for(entry.key));
  EXPECT_EQ(lib.list(), std::vector<std::string>{path});

  const PolicyEntry loaded = lib.get(entry.key);
  EXPECT_EQ(loaded.key, entry.key);
  EXPECT_EQ(loaded.blob, entry.blob);

  // put() of the same key replaces, not duplicates.
  (void)lib.put(entry);
  EXPECT_EQ(lib.list().size(), 1u);

  const auto matches =
      lib.find(entry.governor_name, entry.key.platform_fingerprint,
               entry.key.workload_class, entry.key.fps_band);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches.front().key, entry.key);
  EXPECT_TRUE(lib.find("nonesuch", entry.key.platform_fingerprint,
                       entry.key.workload_class, entry.key.fps_band)
                  .empty());
}

TEST(PolicyLibrary, MissingKeyAndTornFilesFailClosed) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const PolicyEntry entry = train_leaf(*platform, "rtm", 1, 2);
  const PolicyLibrary lib(temp_dir("library-torn"));
  expect_qlib_error([&] { (void)lib.get(entry.key); }, "no entry");

  // A torn file in the directory surfaces as an error, never as silently
  // skipped knowledge.
  const std::string path = lib.put(entry);
  write_bytes(path, read_bytes(path).substr(0, 40));
  EXPECT_THROW((void)lib.entries(), QlibError);
  EXPECT_THROW((void)lib.get(entry.key), QlibError);
}

// --- Merge algebra -----------------------------------------------------------

TEST(MergeAlgebra, AssociativeAndOrderInvariant) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const PolicyEntry a = train_leaf(*platform, "rtm", 1, 11);
  const PolicyEntry b = train_leaf(*platform, "rtm", 2, 12);
  const PolicyEntry c = train_leaf(*platform, "rtm", 3, 13);

  const PolicyEntry flat = merge_entries({a, b, c});
  EXPECT_EQ(flat.kind, PolicyBlobKind::kMerged);
  EXPECT_EQ(flat.provenance.sources, 3u);
  EXPECT_EQ(flat.provenance.epochs_trained,
            a.provenance.epochs_trained + b.provenance.epochs_trained +
                c.provenance.epochs_trained);
  EXPECT_EQ(flat.provenance.visit_weight,
            a.provenance.visit_weight + b.provenance.visit_weight +
                c.provenance.visit_weight);

  // Any order of the same leaves: identical bytes and provenance.
  const PolicyEntry reordered = merge_entries({c, a, b});
  EXPECT_EQ(reordered.blob, flat.blob);
  EXPECT_EQ(reordered.provenance.visit_weight, flat.provenance.visit_weight);
  EXPECT_EQ(reordered.provenance.source_fingerprint,
            flat.provenance.source_fingerprint);

  // Any grouping: merging a pre-merged accumulator with the remaining leaf
  // yields the same bytes as the flat fold.
  const PolicyEntry grouped = merge_entries({merge_entries({a, b}), c});
  EXPECT_EQ(grouped.blob, flat.blob);
  EXPECT_EQ(grouped.provenance.visit_weight, flat.provenance.visit_weight);
  EXPECT_EQ(grouped.provenance.sources, 3u);
  EXPECT_EQ(grouped.provenance.source_fingerprint,
            flat.provenance.source_fingerprint);
}

TEST(MergeAlgebra, SelfMergeLeavesTheDecisionPolicyUnchanged) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const PolicyEntry a = train_leaf(*platform, "rtm", 1, 11);

  // Merging an entry with itself doubles every visit weight and every
  // weighted Q sum by exactly a power of two, so the averaged Q-values —
  // and with them the greedy policy — are bit-identical. (The extracted
  // *payload* differs legitimately: visit counts are provenance and double.)
  const PolicyEntry once = merge_entries({a});
  const PolicyEntry twice = merge_entries({a, a});
  EXPECT_EQ(twice.provenance.visit_weight, 2 * once.provenance.visit_weight);
  EXPECT_EQ(twice.provenance.epochs_trained,
            2 * once.provenance.epochs_trained);
  // XOR provenance of a duplicated source cancels — documented behaviour.
  EXPECT_EQ(twice.provenance.source_fingerprint, 0u);

  const auto materialise = [&](const PolicyEntry& entry) {
    auto governor = sim::make_governor("rtm", 9);
    std::istringstream in(entry.state_for(*governor), std::ios::binary);
    governor->load_state(in);
    auto* rtm = dynamic_cast<rtm::RtmGovernor*>(governor.get());
    EXPECT_NE(rtm, nullptr);
    EXPECT_NE(rtm->q_table(), nullptr);
    return rtm->q_table()->greedy_policy();
  };
  EXPECT_EQ(materialise(once), materialise(twice));
}

TEST(MergeAlgebra, RejectsEveryIdentitySkewWithASpecificError) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const PolicyEntry a = train_leaf(*platform, "rtm", 1, 11);

  EXPECT_THROW((void)merge_entries({}), QlibError);

  PolicyEntry b = a;
  b.governor_name = "other-governor";
  expect_qlib_error([&] { (void)merge_entries({a, b}); }, "governor");

  b = a;
  b.key.governor_spec = "rtm(alpha=0.97)";
  expect_qlib_error([&] { (void)merge_entries({a, b}); }, "spec");

  b = a;
  b.opp_count += 1;
  expect_qlib_error([&] { (void)merge_entries({a, b}); }, "action space");

  b = a;
  b.core_count += 1;
  expect_qlib_error([&] { (void)merge_entries({a, b}); }, "core count");

  b = a;
  b.key.platform_fingerprint ^= 1;
  expect_qlib_error([&] { (void)merge_entries({a, b}); },
                    "operating points");

  b = a;
  b.key.workload_class = "h264";
  EXPECT_THROW((void)merge_entries({a, b}), QlibError);
}

TEST(MergeAlgebra, NonMergeableGovernorsCannotMerge) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const PolicyEntry entry = train_leaf(*platform, "performance", 1, 2);
  // Leaf publication of a non-mergeable governor works (weight 0) ...
  EXPECT_EQ(entry.provenance.visit_weight, 0u);
  // ... but fleet-merging it fails closed.
  expect_qlib_error([&] { (void)merge_entries({entry, entry}); },
                    "mergeable");
}

// --- Engine warm start -------------------------------------------------------

TEST(WarmStart, FromFileMatchesInProcessTransferExactly) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application first = make_app("mpeg4", 1, *platform);
  const wl::Application second = make_app("h264", 2, *platform);

  // In-process transfer (the PR 5 path): train, keep state, run app two.
  const auto transfer = sim::make_governor("rtm", 7);
  const sim::RunResult trained =
      sim::run_simulation(*platform, first, *transfer);
  sim::RunOptions keep;
  keep.reset_governor = false;
  const sim::RunResult reference =
      sim::run_simulation(*platform, second, *transfer, keep);

  // Library transfer: publish the same trained state, warm-start a fresh
  // governor instance from the file.
  const auto publisher = sim::make_governor("rtm", 7);
  (void)sim::run_simulation(*platform, first, *publisher);
  const PolicyEntry leaf = make_leaf_entry(*platform, *publisher, "h264",
                                           25.0, "rtm", trained.epoch_count);
  const std::string path = temp_dir("warm-file") + "/leaf.qpol";
  leaf.save_file(path);

  const auto fresh = sim::make_governor("rtm", 7);
  sim::RunOptions warm;
  warm.warm_start_from = path;
  const sim::RunResult result =
      sim::run_simulation(*platform, second, *fresh, warm);

  // Knowledge-only transfer, bit-identical trajectory.
  EXPECT_EQ(result.epoch_count, reference.epoch_count);
  EXPECT_EQ(result.deadline_misses, reference.deadline_misses);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(result.total_energy),
            std::bit_cast<std::uint64_t>(reference.total_energy));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(result.total_time),
            std::bit_cast<std::uint64_t>(reference.total_time));
}

TEST(WarmStart, DirectoryLookupFindsByRunIdentity) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const std::string dir = temp_dir("warm-dir");
  const PolicyLibrary lib(dir);
  PolicyEntry leaf = train_leaf(*platform, "rtm", 1, 2, "mpeg4");
  (void)lib.put(leaf);

  const wl::Application app = make_app("mpeg4", 3, *platform);
  const auto governor = sim::make_governor("rtm", 9);
  sim::RunOptions warm;
  warm.warm_start_from = dir;
  EXPECT_NO_THROW((void)sim::run_simulation(*platform, app, *governor, warm));

  // A second spec variant under the same run identity makes the directory
  // lookup ambiguous: fail closed, tell the user to name the file.
  PolicyEntry variant = leaf;
  variant.key.governor_spec = "rtm(alpha=0.97)";
  (void)lib.put(variant);
  expect_qlib_error(
      [&] {
        const auto g = sim::make_governor("rtm", 9);
        (void)sim::run_simulation(*platform, app, *g, warm);
      },
      ".qpol");
}

TEST(WarmStart, MissingEntryAndIdentitySkewsFailClosed) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app("mpeg4", 3, *platform);

  // Empty library: no entry for this run's identity.
  {
    const auto governor = sim::make_governor("rtm", 9);
    sim::RunOptions warm;
    warm.warm_start_from = temp_dir("warm-empty");
    expect_qlib_error(
        [&] { (void)sim::run_simulation(*platform, app, *governor, warm); },
        "no entry");
  }

  // A leaf of one governor cannot warm-start another.
  const PolicyEntry leaf = train_leaf(*platform, "rtm", 1, 2);
  const std::string path = temp_dir("warm-skew") + "/leaf.qpol";
  leaf.save_file(path);
  {
    const auto governor = sim::make_governor("ondemand", 9);
    sim::RunOptions warm;
    warm.warm_start_from = path;
    expect_qlib_error(
        [&] { (void)sim::run_simulation(*platform, app, *governor, warm); },
        "governor");
  }
}

TEST(WarmStart, MutuallyExclusiveWithResume) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app("mpeg4", 3, *platform);
  const auto governor = sim::make_governor("rtm", 9);
  sim::RunOptions opt;
  opt.warm_start_from = "somewhere.qpol";
  opt.resume_from = "somewhere.ckpt";
  EXPECT_THROW((void)sim::run_simulation(*platform, app, *governor, opt),
               std::invalid_argument);
}

// --- QlibSink (publish path) -------------------------------------------------

TEST(QlibSink, PublishesALeafEntryAtRunEnd) {
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app = make_app("mpeg4", 1, *platform);
  const auto governor = sim::make_governor("rtm", 7);

  const std::string dir = temp_dir("sink");
  QlibSink sink(dir);
  sink.set_governor_spec("rtm");
  sim::RunOptions opt;
  opt.sinks = {&sink};
  const sim::RunResult run =
      sim::run_simulation(*platform, app, *governor, opt);

  EXPECT_EQ(sink.published(), 1u);
  const PolicyLibrary lib(dir);
  const PolicyKey key = PolicyKey::make(*platform, "mpeg4", 25.0, "rtm");
  ASSERT_TRUE(lib.contains(key)) << sink.last_path();
  const PolicyEntry entry = lib.get(key);
  EXPECT_EQ(entry.kind, PolicyBlobKind::kLeaf);
  EXPECT_EQ(entry.provenance.epochs_trained, run.epoch_count);
  EXPECT_GT(entry.provenance.visit_weight, 0u);
}

TEST(QlibSink, ThrowsWhenUsedOutsideAnEngineRun) {
  QlibSink sink(temp_dir("sink-unbound"));
  sim::RunContext ctx;
  EXPECT_THROW(sink.on_run_begin(ctx), std::logic_error);
}

// --- Fleet merge differential ------------------------------------------------

fleet::PopulationSpec learning_population() {
  fleet::PopulationSpec pop;
  pop.governors = {"rtm", "performance"};
  pop.workloads = {"flat(mean=2e8,cv=0.1)"};
  pop.fps = {30.0};
  pop.devices_per_cell = 3;
  pop.frames = 20;
  pop.base_seed = 99;
  pop.energy_bins = 64;
  pop.miss_bins = 32;
  pop.perf_bins = 32;
  return pop;
}

/// The fleet policy bytes per cell, read back from the report's paths.
std::vector<std::string> policy_bytes(const fleet::PopulationReport& report) {
  std::vector<std::string> out;
  for (const auto& row : report.rows) {
    out.push_back(row.policy_path.empty() ? std::string()
                                          : read_bytes(row.policy_path));
  }
  return out;
}

TEST(FleetPolicyMerge, BitIdenticalAcrossShardCountsAndKillRetry) {
  const fleet::PopulationSpec pop = learning_population();

  // Reference: one shard, sequential in-process.
  fleet::FleetOptions seq;
  seq.shards = 1;
  seq.workers = 0;
  seq.out_dir = temp_dir("fleet-seq");
  fleet::FleetDriver seq_driver(seq);
  const fleet::PopulationReport reference = seq_driver.run(pop);
  const std::vector<std::string> ref_bytes = policy_bytes(reference);

  // The learning cell published a fleet policy; the non-learning cell
  // deterministically did not.
  ASSERT_EQ(reference.rows.size(), 2u);
  std::size_t published = 0;
  for (std::size_t i = 0; i < reference.rows.size(); ++i) {
    const auto& row = reference.rows[i];
    if (row.cell.governor == "rtm") {
      ASSERT_FALSE(row.policy_path.empty());
      const PolicyEntry entry = PolicyEntry::load_file(row.policy_path);
      EXPECT_EQ(entry.kind, PolicyBlobKind::kMerged);
      EXPECT_EQ(entry.provenance.sources, pop.devices_per_cell);
      EXPECT_GT(entry.provenance.visit_weight, 0u);
      ++published;
    } else {
      EXPECT_TRUE(row.policy_path.empty());
    }
  }
  EXPECT_EQ(published, 1u);

  // Same population, 3 shards: identical policy bytes.
  fleet::FleetOptions sharded;
  sharded.shards = 3;
  sharded.workers = 0;
  sharded.out_dir = temp_dir("fleet-sharded");
  fleet::FleetDriver sharded_driver(sharded);
  EXPECT_EQ(policy_bytes(sharded_driver.run(pop)), ref_bytes);

  // Same population, 2 shards across forked workers whose first attempts are
  // all killed after one device: the relaunch resumes the accumulator from
  // the shard checkpoint and the merged policy is still bit-identical.
  fleet::FleetOptions faulty;
  faulty.shards = 2;
  faulty.workers = 2;
  faulty.out_dir = temp_dir("fleet-faulty");
  faulty.checkpoint_every = 1;
  faulty.fail_first_attempt_after = 1;
  fleet::FleetDriver faulty_driver(faulty);
  EXPECT_EQ(policy_bytes(faulty_driver.run(pop)), ref_bytes);
  EXPECT_EQ(faulty_driver.retries_used(), 2u);

  // The warm-start consumer accepts the fleet policy end to end.
  auto platform = hw::Platform::odroid_xu3_a15();
  const wl::Application app =
      make_app("flat(mean=2e8,cv=0.1)", 5, *platform, 30.0, 40);
  const auto governor = sim::make_governor("rtm", 3);
  sim::RunOptions warm;
  warm.warm_start_from = seq.out_dir + "/qlib";
  EXPECT_NO_THROW((void)sim::run_simulation(*platform, app, *governor, warm));
}

TEST(FleetPolicyMerge, ShardSummaryPoliciesRoundTrip) {
  const fleet::PopulationSpec pop = learning_population();
  const std::string dir = temp_dir("summary-rt");
  fleet::Shard shard;
  shard.index = 0;
  shard.count = 1;
  shard.device_begin = 0;
  shard.device_end = pop.device_count();
  fleet::ShardRunnerOptions opts;
  opts.summary_path = dir + "/shard-0.fsum";
  const fleet::ShardSummary summary = fleet::run_shard(pop, shard, opts);

  ASSERT_EQ(summary.policies.size(), summary.cells.size());
  const fleet::ShardSummary loaded =
      fleet::ShardSummary::load_file(opts.summary_path);
  ASSERT_EQ(loaded.policies.size(), summary.policies.size());
  for (const auto& [cell, policy] : summary.policies) {
    const auto it = loaded.policies.find(cell);
    ASSERT_NE(it, loaded.policies.end());
    EXPECT_EQ(it->second.mergeable, policy.mergeable);
    EXPECT_EQ(it->second.governor_name, policy.governor_name);
    EXPECT_EQ(it->second.opp_count, policy.opp_count);
    EXPECT_EQ(it->second.core_count, policy.core_count);
    EXPECT_EQ(it->second.platform_fingerprint, policy.platform_fingerprint);
    EXPECT_EQ(it->second.epochs, policy.epochs);
    EXPECT_EQ(it->second.source_fingerprint, policy.source_fingerprint);
    EXPECT_EQ(it->second.accumulator, policy.accumulator);
  }
}

}  // namespace
}  // namespace prime::qlib
