/// \file test_csv.cpp
/// \brief Unit tests for CSV writing and parsing.
#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hpp"

namespace prime::common {
namespace {

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.header({"a", "b"});
  w.row({1.0, 2.5});
  w.row({3.0, -4.25});
  EXPECT_EQ(out.str(), "a,b\n1,2.5\n3,-4.25\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(CsvWriter, StringRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.header({"name", "tag"});
  w.row_strings({"x264", "I"});
  EXPECT_EQ(out.str(), "name,tag\nx264,I\n");
}

TEST(CsvWriter, HighPrecisionDoubles) {
  std::ostringstream out;
  CsvWriter w(out);
  w.header({"v"});
  w.row({123456789.123});
  EXPECT_NE(out.str().find("123456789"), std::string::npos);
}

TEST(ParseCsv, RoundTrip) {
  std::ostringstream out;
  CsvWriter w(out);
  w.header({"x", "y"});
  w.row({1.0, 10.0});
  w.row({2.0, 20.0});
  const CsvTable t = parse_csv(out.str());
  ASSERT_EQ(t.header.size(), 2u);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.column_index("y"), 1);
  const auto y = t.column_as_double("y");
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 10.0);
  EXPECT_DOUBLE_EQ(y[1], 20.0);
}

TEST(ParseCsv, MissingColumnIndexIsMinusOne) {
  const CsvTable t = parse_csv("a,b\n1,2\n");
  EXPECT_EQ(t.column_index("zzz"), -1);
  EXPECT_TRUE(t.column_as_double("zzz").empty());
}

TEST(ParseCsv, ToleratesCrlfAndBlankLines) {
  const CsvTable t = parse_csv("a,b\r\n\r\n1,2\r\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "1");
}

TEST(ParseCsv, EmptyInput) {
  const CsvTable t = parse_csv("");
  EXPECT_TRUE(t.header.empty());
  EXPECT_TRUE(t.rows.empty());
}

TEST(ParseCsv, RaggedRowTooShortForColumnThrows) {
  // A short row used to read as 0.0 — corrupt tables must fail closed.
  const CsvTable t = parse_csv("a,b\n1\n2,3\n");
  EXPECT_NO_THROW(t.column_as_double("a"));  // Column 0 exists in every row.
  try {
    (void)t.column_as_double("b");
    FAIL() << "short row did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("row 0"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'b'"), std::string::npos);
  }
}

TEST(ParseCsv, MalformedCellThrowsWithContext) {
  const CsvTable t = parse_csv("a,b\n1,2\n3,oops\n");
  try {
    (void)t.column_as_double("b");
    FAIL() << "malformed cell did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("oops"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("row 1"), std::string::npos);
  }
}

TEST(ParseCsv, TrailingGarbageInCellThrows) {
  // strtod would stop at the 'x' and silently keep the 3 — whole-cell only.
  const CsvTable t = parse_csv("a\n3x\n");
  EXPECT_THROW(t.column_as_double("a"), std::runtime_error);
}

TEST(ParseCsv, WhitespacePaddedCellsStillParse) {
  const CsvTable t = parse_csv("a\n 2.5 \n");
  const auto a = t.column_as_double("a");
  ASSERT_EQ(a.size(), 1u);
  EXPECT_DOUBLE_EQ(a[0], 2.5);
}

TEST(ReadCsvFile, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/to.csv"), std::runtime_error);
}

}  // namespace
}  // namespace prime::common
