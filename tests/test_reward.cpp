/// \file test_reward.cpp
/// \brief Unit tests for the pay-off functions (eq. 4).
#include <gtest/gtest.h>

#include "rtm/reward.hpp"

namespace prime::rtm {
namespace {

TEST(TargetSlackReward, MaximalAtTarget) {
  const TargetSlackReward r;
  const double target = r.params().target;
  const double at_target = r.reward(target, 0.0);
  EXPECT_GT(at_target, r.reward(target + 0.1, 0.0));
  EXPECT_GT(at_target, r.reward(target - 0.1, 0.0));
  EXPECT_NEAR(at_target, r.params().a, 1e-12);
}

TEST(TargetSlackReward, AsymmetricPenaltyBelowTarget) {
  const TargetSlackReward r;
  const double target = r.params().target;
  // Same distance below (towards misses) hurts more than above (headroom).
  EXPECT_LT(r.reward(target - 0.1, 0.0), r.reward(target + 0.1, 0.0));
}

TEST(TargetSlackReward, DeadlineMissesStronglyNegative) {
  const TargetSlackReward r;
  EXPECT_LT(r.reward(-0.2, 0.0), -0.5);
}

TEST(TargetSlackReward, ImprovementTermRewardsApproach) {
  const TargetSlackReward r;
  const double target = r.params().target;
  // Arriving at 'far' from even further away (improving) beats arriving at
  // 'far' from the target (worsening).
  const double far = target + 0.2;
  const double improving = r.reward(far, -0.2);   // previous was target + 0.4
  const double worsening = r.reward(far, +0.2);   // previous was target
  EXPECT_GT(improving, worsening);
}

TEST(TargetSlackReward, ClampsMagnitude) {
  const TargetSlackReward r;
  EXPECT_GE(r.reward(-5.0, -5.0), -r.params().clip - 1e-12);
  EXPECT_LE(r.reward(5.0, 5.0), r.params().clip + 1e-12);
}

TEST(TargetSlackReward, CustomParams) {
  TargetSlackReward::Params p;
  p.target = 0.0;
  p.scale = 1.0;
  p.a = 2.0;
  p.b = 0.0;
  p.neg_penalty = 1.0;  // symmetric
  const TargetSlackReward r(p);
  EXPECT_NEAR(r.reward(0.0, 0.0), 2.0, 1e-12);
  EXPECT_NEAR(r.reward(0.5, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(r.reward(-0.5, 0.0), 1.0, 1e-12);
}

TEST(LinearSlackReward, LiteralEquation4) {
  const LinearSlackReward r(2.0, 3.0);
  EXPECT_NEAR(r.reward(0.1, 0.05), 2.0 * 0.1 + 3.0 * 0.05, 1e-12);
  EXPECT_NEAR(r.reward(-0.2, 0.0), -0.4, 1e-12);
}

TEST(LinearSlackReward, MonotoneInSlack) {
  // The property that makes the literal form unusable for energy: reward
  // increases without bound as slack grows (faster is always better).
  const LinearSlackReward r;
  EXPECT_GT(r.reward(0.9, 0.0), r.reward(0.5, 0.0));
  EXPECT_GT(r.reward(0.5, 0.0), r.reward(0.1, 0.0));
}

TEST(MakeReward, Factory) {
  EXPECT_EQ(make_reward("target-slack")->name(), "target-slack");
  EXPECT_EQ(make_reward("linear-slack")->name(), "linear-slack");
  EXPECT_THROW(make_reward("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace prime::rtm
