/// \file test_config.cpp
/// \brief Unit tests for the key-value configuration store.
#include <gtest/gtest.h>

#include "common/config.hpp"

namespace prime::common {
namespace {

TEST(Config, SetAndGet) {
  Config c;
  c.set("a.b", "hello");
  EXPECT_TRUE(c.has("a.b"));
  EXPECT_EQ(c.get_string("a.b", "x"), "hello");
  EXPECT_FALSE(c.has("a.c"));
  EXPECT_EQ(c.get_string("a.c", "fallback"), "fallback");
}

TEST(Config, TypedSettersRoundTrip) {
  Config c;
  c.set_double("d", 3.25);
  c.set_int("i", -42);
  c.set_bool("t", true);
  c.set_bool("f", false);
  EXPECT_DOUBLE_EQ(c.get_double("d", 0.0), 3.25);
  EXPECT_EQ(c.get_int("i", 0), -42);
  EXPECT_TRUE(c.get_bool("t", false));
  EXPECT_FALSE(c.get_bool("f", true));
}

TEST(Config, UnparsableValuesFallBack) {
  Config c;
  c.set("x", "not-a-number");
  EXPECT_DOUBLE_EQ(c.get_double("x", 1.5), 1.5);
  EXPECT_EQ(c.get_int("x", 7), 7);
  EXPECT_TRUE(c.get_bool("x", true));
}

TEST(Config, BoolSpellings) {
  Config c;
  for (const char* truthy : {"true", "1", "yes", "on", "TRUE", "Yes"}) {
    c.set("k", truthy);
    EXPECT_TRUE(c.get_bool("k", false)) << truthy;
  }
  for (const char* falsy : {"false", "0", "no", "off", "FALSE"}) {
    c.set("k", falsy);
    EXPECT_FALSE(c.get_bool("k", true)) << falsy;
  }
}

TEST(Config, ParseAssignment) {
  Config c;
  EXPECT_TRUE(c.parse_assignment("app.fps = 30"));
  EXPECT_DOUBLE_EQ(c.get_double("app.fps", 0.0), 30.0);
  EXPECT_FALSE(c.parse_assignment("no-equals-here"));
  EXPECT_FALSE(c.parse_assignment("=value-without-key"));
}

TEST(Config, ParseArgsSkipsNonAssignments) {
  const char* argv[] = {"prog", "a=1", "--flag", "b=two"};
  Config c;
  c.parse_args(4, argv);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.get_int("a", 0), 1);
  EXPECT_EQ(c.get_string("b", ""), "two");
}

TEST(Config, ParseTextWithComments) {
  Config c;
  c.parse_text("# a config file\nx=1\n  y = 2  # inline comment\n\nz=3\n");
  EXPECT_EQ(c.get_int("x", 0), 1);
  EXPECT_EQ(c.get_int("y", 0), 2);
  EXPECT_EQ(c.get_int("z", 0), 3);
}

TEST(Config, OverwriteTakesLatest) {
  Config c;
  c.set("k", "1");
  c.set("k", "2");
  EXPECT_EQ(c.get_int("k", 0), 2);
  EXPECT_EQ(c.size(), 1u);
}

TEST(Config, KeysSorted) {
  Config c;
  c.set("b", "1");
  c.set("a", "1");
  c.set("c", "1");
  const auto keys = c.keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[2], "c");
}

}  // namespace
}  // namespace prime::common
