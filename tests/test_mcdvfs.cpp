/// \file test_mcdvfs.cpp
/// \brief Unit tests for the multi-core DVFS control baseline [20].
#include <gtest/gtest.h>

#include "gov/mcdvfs.hpp"

namespace prime::gov {
namespace {

DecisionContext make_ctx(const hw::OppTable& opps) {
  DecisionContext ctx;
  ctx.period = 0.040;
  ctx.cores = 4;
  ctx.opps = &opps;
  return ctx;
}

EpochObservation make_obs(const hw::OppTable& opps, std::size_t opp_index,
                          double per_core_load, bool met = true) {
  EpochObservation o;
  o.period = 0.040;
  o.window = 0.040;
  o.frame_time = met ? 0.03 : 0.05;
  o.opp_index = opp_index;
  const common::Cycles c =
      common::cycles_at(opps.at(opp_index).frequency, per_core_load * 0.040);
  o.core_cycles = {c, c, c, c};
  o.total_cycles = 4 * c;
  o.deadline_met = met;
  return o;
}

TEST(Mcdvfs, FirstDecisionIsValidIndex) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  MulticoreDvfsGovernor g;
  const auto idx = g.decide(make_ctx(opps), std::nullopt);
  EXPECT_LT(idx, opps.size());
}

TEST(Mcdvfs, DeterministicForSeed) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  McdvfsParams p;
  p.seed = 99;
  MulticoreDvfsGovernor a(p);
  MulticoreDvfsGovernor b(p);
  auto ctx = make_ctx(opps);
  auto oa = std::optional<EpochObservation>{};
  auto ob = std::optional<EpochObservation>{};
  for (int i = 0; i < 50; ++i) {
    const auto ia = a.decide(ctx, oa);
    const auto ib = b.decide(ctx, ob);
    ASSERT_EQ(ia, ib);
    oa = make_obs(opps, ia, 0.5);
    ob = make_obs(opps, ib, 0.5);
  }
}

TEST(Mcdvfs, EpsilonDecaysToFloorAndRecordsConvergence) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  MulticoreDvfsGovernor g;
  auto ctx = make_ctx(opps);
  std::optional<EpochObservation> obs;
  for (int i = 0; i < 400; ++i) {
    const auto idx = g.decide(ctx, obs);
    obs = make_obs(opps, idx, 0.5);
  }
  EXPECT_NEAR(g.epsilon(), 0.01, 1e-9);
  EXPECT_GT(g.learning_complete_epoch(), 0u);
  // Geometric decay 0.978 from 1.0 to 0.01: ~207 epochs (Table III's 205).
  EXPECT_NEAR(static_cast<double>(g.learning_complete_epoch()), 207.0, 5.0);
}

TEST(Mcdvfs, MissesDriveFrequencyUp) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  McdvfsParams p;
  p.epsilon0 = 0.0;  // pure greedy so learning shows through directly
  p.epsilon_min = 0.0;
  MulticoreDvfsGovernor g(p);
  auto ctx = make_ctx(opps);
  std::optional<EpochObservation> obs;
  std::size_t idx = g.decide(ctx, obs);
  // Persistent misses at high utilisation: chosen actions accumulate penalty
  // until the policy climbs.
  const std::size_t start = idx;
  for (int i = 0; i < 60; ++i) {
    obs = make_obs(opps, idx, 1.0, /*met=*/false);
    idx = g.decide(ctx, obs);
  }
  EXPECT_GT(idx, start);
}

TEST(Mcdvfs, PerCoreOverheadScalesWithCores) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  MulticoreDvfsGovernor g;
  (void)g.decide(make_ctx(opps), std::nullopt);
  // 4 cores: sensor read + 4 per-core updates; must exceed a single-update
  // governor's cost (the Table III overhead asymmetry).
  EXPECT_GT(g.epoch_overhead(), common::us(40.0));
}

TEST(Mcdvfs, GreedyPolicyCoversAllCoreTables) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  McdvfsParams p;
  MulticoreDvfsGovernor g(p);
  (void)g.decide(make_ctx(opps), std::nullopt);
  EXPECT_EQ(g.greedy_policy().size(), 4u * p.util_levels);
}

TEST(Mcdvfs, ResetRestoresExploration) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  MulticoreDvfsGovernor g;
  auto ctx = make_ctx(opps);
  std::optional<EpochObservation> obs;
  for (int i = 0; i < 300; ++i) {
    const auto idx = g.decide(ctx, obs);
    obs = make_obs(opps, idx, 0.5);
  }
  g.reset();
  EXPECT_DOUBLE_EQ(g.epsilon(), 1.0);
  EXPECT_EQ(g.learning_complete_epoch(), 0u);
  EXPECT_EQ(g.exploration_count(), 0u);
}

}  // namespace
}  // namespace prime::gov
