/// \file test_ewma.cpp
/// \brief Unit tests for the EWMA workload predictor (eq. 1).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "rtm/ewma.hpp"

namespace prime::rtm {
namespace {

TEST(EwmaPredictor, RejectsBadGamma) {
  EXPECT_THROW(EwmaPredictor(0.0), std::invalid_argument);
  EXPECT_THROW(EwmaPredictor(-0.5), std::invalid_argument);
  EXPECT_THROW(EwmaPredictor(1.5), std::invalid_argument);
  EXPECT_NO_THROW(EwmaPredictor(1.0));
}

TEST(EwmaPredictor, FirstObservationSeeds) {
  EwmaPredictor p(0.6);
  EXPECT_FALSE(p.primed());
  EXPECT_EQ(p.observe(1000), 1000u);
  EXPECT_TRUE(p.primed());
  EXPECT_EQ(p.prediction(), 1000u);
}

TEST(EwmaPredictor, Equation1Exactly) {
  // CC_{i+1} = gamma * actual_i + (1 - gamma) * pred_i
  EwmaPredictor p(0.6);
  (void)p.observe(1000);
  const common::Cycles next = p.observe(2000);
  EXPECT_EQ(next, static_cast<common::Cycles>(0.6 * 2000 + 0.4 * 1000));
}

TEST(EwmaPredictor, ConvergesToConstantInput) {
  EwmaPredictor p(0.6);
  for (int i = 0; i < 50; ++i) (void)p.observe(5000);
  EXPECT_NEAR(static_cast<double>(p.prediction()), 5000.0, 1.0);
}

TEST(EwmaPredictor, GammaOneTracksInstantly) {
  EwmaPredictor p(1.0);
  (void)p.observe(100);
  (void)p.observe(9999);
  EXPECT_EQ(p.prediction(), 9999u);
}

TEST(EwmaPredictor, LowGammaSmoothsHarder) {
  EwmaPredictor fast(0.9);
  EwmaPredictor slow(0.1);
  (void)fast.observe(1000);
  (void)slow.observe(1000);
  (void)fast.observe(2000);
  (void)slow.observe(2000);
  EXPECT_GT(fast.prediction(), slow.prediction());
}

TEST(EwmaPredictor, MispredictionStatsTrackStepChange) {
  EwmaPredictor p(0.6);
  (void)p.observe(1000);
  (void)p.observe(1000);
  EXPECT_NEAR(p.last_misprediction(), 0.0, 1e-12);
  (void)p.observe(2000);  // prediction was 1000 -> 50 % error
  EXPECT_NEAR(p.last_misprediction(), 0.5, 1e-9);
  EXPECT_GT(p.misprediction_stats().mean(), 0.0);
}

TEST(EwmaPredictor, SteadyInputHasLowMisprediction) {
  common::Rng rng(3);
  EwmaPredictor p(0.6);
  for (int i = 0; i < 500; ++i) {
    (void)p.observe(static_cast<common::Cycles>(1.0e8 * (1.0 + 0.02 * rng.normal())));
  }
  // 2 % input noise -> misprediction stays in the few-percent band (Fig. 3's
  // late-phase ~3 %).
  EXPECT_LT(p.misprediction_stats().mean(), 0.05);
}

TEST(EwmaPredictor, ResetForgets) {
  EwmaPredictor p(0.6);
  (void)p.observe(1234);
  p.reset();
  EXPECT_FALSE(p.primed());
  EXPECT_EQ(p.prediction(), 0u);
  EXPECT_EQ(p.observations(), 0u);
  EXPECT_EQ(p.misprediction_stats().count(), 0u);
}

/// Property: prediction always lies between the minimum and maximum of the
/// observations seen so far (convexity of the EWMA).
class EwmaGammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(EwmaGammaSweep, PredictionInsideObservedRange) {
  EwmaPredictor p(GetParam());
  common::Rng rng(17);
  common::Cycles lo = ~common::Cycles{0};
  common::Cycles hi = 0;
  for (int i = 0; i < 200; ++i) {
    const auto x = static_cast<common::Cycles>(rng.uniform(1.0e6, 9.0e6));
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    (void)p.observe(x);
    EXPECT_GE(p.prediction(), lo);
    EXPECT_LE(p.prediction(), hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Gammas, EwmaGammaSweep,
                         ::testing::Values(0.1, 0.3, 0.6, 0.9, 1.0));

}  // namespace
}  // namespace prime::rtm
