/// \file test_governor_simple.cpp
/// \brief Unit tests for the static governors and the governor contract.
#include <gtest/gtest.h>

#include "gov/simple.hpp"
#include "hw/opp.hpp"

namespace prime::gov {
namespace {

DecisionContext make_ctx(const hw::OppTable& opps) {
  DecisionContext ctx;
  ctx.epoch = 0;
  ctx.period = 0.040;
  ctx.cores = 4;
  ctx.opps = &opps;
  return ctx;
}

TEST(PerformanceGovernor, AlwaysFastest) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  PerformanceGovernor g;
  EXPECT_EQ(g.decide(make_ctx(opps), std::nullopt), 18u);
  EXPECT_EQ(g.name(), "performance");
}

TEST(PowersaveGovernor, AlwaysSlowest) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  PowersaveGovernor g;
  EXPECT_EQ(g.decide(make_ctx(opps), std::nullopt), 0u);
  EXPECT_EQ(g.name(), "powersave");
}

TEST(UserspaceGovernor, HoldsPinnedIndex) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  UserspaceGovernor g(7);
  EXPECT_EQ(g.decide(make_ctx(opps), std::nullopt), 7u);
  g.set_index(3);
  EXPECT_EQ(g.decide(make_ctx(opps), std::nullopt), 3u);
}

TEST(UserspaceGovernor, ClampsOutOfRange) {
  const hw::OppTable opps = hw::OppTable::odroid_xu3_a15();
  UserspaceGovernor g(999);
  EXPECT_EQ(g.decide(make_ctx(opps), std::nullopt), 18u);
}

TEST(Governor, DefaultOverheadIsSensorReadScale) {
  PerformanceGovernor g;
  EXPECT_GT(g.epoch_overhead(), 0.0);
  EXPECT_LT(g.epoch_overhead(), common::ms(1.0));
}

TEST(EpochObservation, SlackRatio) {
  EpochObservation o;
  o.period = 0.040;
  o.frame_time = 0.030;
  EXPECT_NEAR(o.slack_ratio(), 0.25, 1e-12);
  o.frame_time = 0.050;
  EXPECT_NEAR(o.slack_ratio(), -0.25, 1e-12);
  o.period = 0.0;
  EXPECT_DOUBLE_EQ(o.slack_ratio(), 0.0);
}

}  // namespace
}  // namespace prime::gov
